// Package server implements dynaqd, the simulation-as-a-service daemon: a
// bounded FIFO job queue drained by a worker pool layered on
// experiment.RunTrialsCtx, a content-addressed on-disk result cache keyed
// by (scenario hash, scheme, seed, build version), and an HTTP API for
// submitting jobs, polling status, streaming live progress, and scraping
// metrics.
//
// Determinism is the serving feature: because a simulation result is a pure
// function of (scenario, scheme, seed) at a given build, the daemon can
// content-address results and serve a cached artifact byte-for-byte
// identical to a fresh run. Nothing in a cache key or an artifact reads the
// wall clock.
package server

import (
	"strconv"
	"sync"
)

// subBuffer is the per-subscriber channel depth. A subscriber that falls
// more than subBuffer lines behind loses the oldest unread lines (the
// stream is progress telemetry, not a durable log — the durable copy is
// events.jsonl in the cell's artifact directory).
const subBuffer = 256

// broadcaster fans one job's event lines out to any number of HTTP
// subscribers. Publishers are the per-cell telemetry Run tee hooks (which
// may run concurrently on trial-pool workers) plus the server's own job
// lifecycle events; subscribers are /v1/jobs/{id}/events handlers.
type broadcaster struct {
	mu     sync.Mutex
	subs   []chan []byte // guarded by mu
	closed bool          // guarded by mu
	drops  int64         // guarded by mu; lines discarded on full subscriber buffers
}

func newBroadcaster() *broadcaster { return &broadcaster{} }

// subscribe registers a new subscriber. The returned channel is closed when
// the job reaches a terminal state; if the job is already terminal it comes
// back closed immediately.
func (b *broadcaster) subscribe() <-chan []byte {
	ch := make(chan []byte, subBuffer)
	b.mu.Lock()
	if b.closed {
		close(ch)
	} else {
		b.subs = append(b.subs, ch)
	}
	b.mu.Unlock()
	return ch
}

// publish wraps one encoded JSONL event line (starting with '{', ending
// with '\n') with the producing cell index — {"cell":N,...original
// fields...} — and delivers it to every subscriber, dropping lines for
// subscribers whose buffer is full rather than stalling the simulation.
// cell -1 marks server-level job lifecycle events.
func (b *broadcaster) publish(cell int, line []byte) {
	if len(line) < 2 || line[0] != '{' {
		return
	}
	msg := make([]byte, 0, len(line)+16)
	msg = append(msg, `{"cell":`...)
	msg = strconv.AppendInt(msg, int64(cell), 10)
	msg = append(msg, ',')
	msg = append(msg, line[1:]...)
	b.mu.Lock()
	for _, ch := range b.subs {
		select {
		case ch <- msg:
		default:
			b.drops++
		}
	}
	b.mu.Unlock()
}

// dropped reports how many lines were discarded on stalled subscribers.
func (b *broadcaster) dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// close marks the stream terminal and closes every subscriber channel.
// Publishing after close is a no-op (there is nobody left to deliver to).
func (b *broadcaster) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for _, ch := range b.subs {
			close(ch)
		}
		b.subs = nil
	}
	b.mu.Unlock()
}
