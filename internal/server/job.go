package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
	"dynaq/internal/telemetry/trace"
)

// Job states. A job is terminal in StateDone or StateFailed; StateQueued
// jobs survive a daemon restart (their request bytes and queue position are
// persisted at submit time).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Cell-only states. A leased cell is held by a fleet worker under a
// time-boxed lease; a quarantined cell exhausted its attempt budget and
// sits on the dead-letter list until an operator requeues its job.
const (
	StateLeased      = "leased"
	StateQuarantined = "quarantined"
)

// maxCellsPerJob bounds the sweep fan-out of one submission so a single
// request cannot enqueue unbounded work.
const maxCellsPerJob = 256

// DefaultTenant is the fair-queue leaf that untagged submissions land in.
// A deployment that never sets a tenant runs entirely in this leaf, where
// the weighted rotation degenerates to the plain FIFO it replaced.
const DefaultTenant = "default"

// maxTenantLen bounds tenant names; they appear in metric labels, trace
// attributes, and queue-marker files.
const maxTenantLen = 64

// validTenant reports whether name is a usable tenant identity: 1-64 runes
// from [A-Za-z0-9._-], the same alphabet trace IDs allow.
func validTenant(name string) bool {
	if name == "" || len(name) > maxTenantLen {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Request is the POST /v1/jobs body: either a bare scenario document
// (exactly what dynaqsim -config accepts) or a wrapper that fans one
// scenario out into a (scheme, seed) sweep — every combination becomes one
// independently cached cell. Tenant names the fair-queue leaf the job
// queues under; the X-Dynaq-Tenant request header overrides it and both
// default to DefaultTenant.
type Request struct {
	Scenario json.RawMessage `json:"scenario"`
	Schemes  []string        `json:"schemes,omitempty"`
	Seeds    []int64         `json:"seeds,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
}

// parseRequest decodes a POST body. A body that does not strictly match the
// wrapper shape is treated as a bare scenario document; its own scheme and
// seed fields then define the job's single cell.
func parseRequest(body []byte) Request {
	var req Request
	if err := strictUnmarshal(body, &req); err == nil && req.Scenario != nil {
		return req
	}
	return Request{Scenario: body}
}

// strictUnmarshal is json.Unmarshal with unknown fields rejected, so a bare
// scenario document (whose fields the wrapper does not know) falls through
// to bare-mode parsing instead of silently losing its content.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Cell is one (scenario, scheme, seed) unit of work: the granularity of
// both execution (one trial in the job's RunTrialsCtx pool) and caching
// (one content-addressed artifact directory).
type Cell struct {
	Index    int
	Scheme   string
	Seed     int64
	Key      string // content address: CacheKey(version, scenario hash, scheme, engine, seed)
	State    string
	CacheHit bool
	Dir      string // artifact directory once done
	Err      string
	Attempts int    // failed attempts charged so far (persisted across restarts)
	Worker   string // last worker to touch the cell ("local" for the fallback pool)

	// span is the wall-time span of the cell attempt currently in flight
	// (nil between attempts or when the job carries no trace); leasedAt is
	// when that attempt was granted/claimed. Both are accessed under s.mu
	// except by the local executor that owns the running attempt.
	span     *trace.SpanRef
	leasedAt time.Time

	// acquired marks a cell popped from the fair-queue tree whose tenant
	// in-flight slot has not been released yet; accessed under s.mu.
	acquired bool
}

// Job is one submission: a scenario body plus its expanded cells.
type Job struct {
	ID           string
	State        string
	Err          string
	Tenant       string // fair-queue leaf; DefaultTenant when untagged
	Scenario     []byte // raw scenario document (cells apply overrides out-of-band)
	ScenarioHash string
	CacheHit     bool // terminal: every cell was served from cache
	Cells        []*Cell

	bc   *broadcaster
	done chan struct{} // closed on terminal state

	// Fair-queue dispatch state while the job is active. outstanding counts
	// unsettled cells, localActive counts local-pool executions in flight,
	// and finalizing stops further dispatch while dispatchCells settles the
	// job; all three are accessed under s.mu. change is a buffered-1 nudge
	// the dispatcher waits on — anyone who moves outstanding or localActive
	// sends on it (created per dispatch, never closed).
	// runCtx is the dispatch context (job timeout); the fair-queue
	// eligibility check skips cells of a job whose context has expired so
	// a timed-out job never dispatches more work.
	outstanding int
	localActive int
	finalizing  bool
	change      chan struct{}
	runCtx      context.Context

	// tr collects the job's spans; rootSpan/queueSpan are the job and
	// queue-wait spans, queuedAt the accept time. All are set once before
	// the job is enqueued (nil tr for jobs recovered terminal, whose trace
	// is served from the persisted trace.jsonl) and never reassigned, so
	// reads need no lock; the tracer itself is internally synchronized.
	tr        *trace.Tracer
	rootSpan  *trace.SpanRef
	queueSpan *trace.SpanRef
	queuedAt  time.Time
}

// buildJob validates a request and expands its cells under the given build
// version. Validation errors are *scenario.ValidationError, mapped to HTTP
// 400 by the submit handler.
func buildJob(req Request, version string) (*Job, error) {
	base, err := scenario.Load(req.Scenario)
	if err != nil {
		return nil, err
	}
	schemes := req.Schemes
	if len(schemes) == 0 {
		schemes = []string{base.Scheme()}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []int64{base.Seed()}
	}
	if len(schemes)*len(seeds) > maxCellsPerJob {
		return nil, &scenario.ValidationError{
			Field: "schemes",
			Msg:   fmt.Sprintf("%d×%d cells exceed the per-job limit of %d", len(schemes), len(seeds), maxCellsPerJob),
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !validTenant(tenant) {
		return nil, &scenario.ValidationError{
			Field: "tenant",
			Msg:   fmt.Sprintf("tenant %q must be 1-%d characters from [A-Za-z0-9._-]", tenant, maxTenantLen),
		}
	}
	hash := telemetry.Hash(req.Scenario)
	j := &Job{
		ID:           "", // filled below, over the expanded cells
		State:        StateQueued,
		Tenant:       tenant,
		Scenario:     req.Scenario,
		ScenarioHash: hash,
		bc:           newBroadcaster(),
		done:         make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, scheme := range schemes {
		for _, seed := range seeds {
			key := CacheKey(version, hash, scheme, base.Engine(), seed)
			if seen[key] {
				continue
			}
			seen[key] = true
			j.Cells = append(j.Cells, &Cell{
				Index:  len(j.Cells),
				Scheme: scheme,
				Seed:   seed,
				Key:    key,
				State:  StateQueued,
			})
		}
	}
	j.ID = jobID(tenant, hash, j.Cells)
	return j, nil
}

// jobID derives the job's identity from its content: the scenario hash plus
// the expanded (scheme, seed) cells. Resubmitting the same work yields the
// same id, which is what lets the daemon dedupe in-flight duplicates and
// turn resubmissions of finished work into cache hits. The build version is
// deliberately excluded — a job keeps its handle across daemon upgrades,
// while its cells' cache keys (which do include the version) force a
// re-run. A non-default tenant is folded in so tenants get isolated job
// handles; the default tenant contributes nothing, keeping single-tenant
// job IDs byte-identical to the pre-tenancy daemon. Cache keys never see
// the tenant — identical work shares artifacts across tenants.
func jobID(tenant, scenarioHash string, cells []*Cell) string {
	b := []byte("dynaqd-job\nscenario=" + scenarioHash + "\n")
	if tenant != DefaultTenant {
		b = append(b, "tenant="...)
		b = append(b, tenant...)
		b = append(b, '\n')
	}
	for _, c := range cells {
		b = append(b, "cell="...)
		b = append(b, c.Scheme...)
		b = append(b, '/')
		b = strconv.AppendInt(b, c.Seed, 10)
		b = append(b, '\n')
	}
	return telemetry.Hash(b)[:16]
}

// CellStatus is the wire form of one cell in GET /v1/jobs/{id}.
type CellStatus struct {
	Index       int    `json:"index"`
	Scheme      string `json:"scheme"`
	Seed        int64  `json:"seed"`
	CacheKey    string `json:"cache_key"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cache_hit"`
	ArtifactDir string `json:"artifact_dir,omitempty"`
	Error       string `json:"error,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Worker      string `json:"worker,omitempty"`
}

// JobStatus is the wire form of GET /v1/jobs/{id} and the terminal state
// persisted as status.json.
type JobStatus struct {
	ID           string       `json:"id"`
	State        string       `json:"state"`
	Tenant       string       `json:"tenant,omitempty"`
	ScenarioHash string       `json:"scenario_hash"`
	Version      string       `json:"version"`
	CacheHit     bool         `json:"cache_hit"`
	Error        string       `json:"error,omitempty"`
	Cells        []CellStatus `json:"cells"`
}

// statusLocked snapshots a job for the wire; the caller holds s.mu.
func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:           j.ID,
		State:        j.State,
		Tenant:       j.Tenant,
		ScenarioHash: j.ScenarioHash,
		Version:      s.cfg.Version,
		CacheHit:     j.CacheHit,
		Error:        j.Err,
		Cells:        make([]CellStatus, 0, len(j.Cells)),
	}
	for _, c := range j.Cells {
		st.Cells = append(st.Cells, CellStatus{
			Index:       c.Index,
			Scheme:      c.Scheme,
			Seed:        c.Seed,
			CacheKey:    c.Key,
			State:       c.State,
			CacheHit:    c.CacheHit,
			ArtifactDir: c.Dir,
			Error:       c.Err,
			Attempts:    c.Attempts,
			Worker:      c.Worker,
		})
	}
	return st
}

// jobFromStatus rebuilds a terminal job from its persisted status.json —
// enough for GET and events replay across a daemon restart. The scenario
// bytes are not reloaded; a resubmission re-parses the request body.
func jobFromStatus(st JobStatus) *Job {
	tenant := st.Tenant
	if tenant == "" {
		tenant = DefaultTenant // status persisted before tenancy existed
	}
	j := &Job{
		ID:           st.ID,
		State:        st.State,
		Err:          st.Error,
		Tenant:       tenant,
		ScenarioHash: st.ScenarioHash,
		CacheHit:     st.CacheHit,
		bc:           newBroadcaster(),
		done:         make(chan struct{}),
	}
	for _, cs := range st.Cells {
		j.Cells = append(j.Cells, &Cell{
			Index:    cs.Index,
			Scheme:   cs.Scheme,
			Seed:     cs.Seed,
			Key:      cs.CacheKey,
			State:    cs.State,
			CacheHit: cs.CacheHit,
			Dir:      cs.ArtifactDir,
			Err:      cs.Error,
			Attempts: cs.Attempts,
			Worker:   cs.Worker,
		})
	}
	j.bc.close()
	close(j.done)
	return j
}

// terminal reports whether a job state is final.
func terminal(state string) bool { return state == StateDone || state == StateFailed }
