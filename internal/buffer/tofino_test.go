package buffer

import (
	"testing"

	"dynaq/internal/units"
)

func TestDynaQTofinoValidation(t *testing.T) {
	if _, err := NewDynaQTofino(0, []int64{1}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestDynaQTofinoUsesStaleLengths(t *testing.T) {
	d, err := NewDynaQTofino(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DynaQ-Tofino" {
		t.Fatalf("Name = %q", d.Name())
	}
	// Live queue 0 is far above its threshold, but no dequeue has
	// refreshed the register: the ingress still sees 0 and admits
	// (subject to the physical bound).
	v := &fakeView{b: 4000, qlens: []units.ByteSize{2000, 0, 0, 0}}
	if !d.Admit(v, 0, 500) {
		t.Fatal("stale view (0) should admit despite live backlog")
	}
	if d.Snapshot(0) != 0 {
		t.Fatal("snapshot must stay stale until a dequeue")
	}
	// A dequeue refreshes the register; now the ingress reacts.
	d.ObserveDequeue(v, 0, 1500, 0)
	if d.Snapshot(0) != 2000 {
		t.Fatalf("snapshot = %d, want 2000", d.Snapshot(0))
	}
	// With the refreshed 2000B view and T_0 = 1000, each arrival grows
	// T_0 by one packet (stealing from idle donors) but the stale backlog
	// still exceeds the threshold: the first two arrivals drop, and once
	// T_0 reaches 2500 the third is admitted — the threshold "catches up"
	// to the stale register exactly like a slashed victim drains.
	if d.Admit(v, 0, 500) {
		t.Fatal("first refreshed arrival should drop (2500 > T_0)")
	}
	if d.Admit(v, 0, 500) {
		t.Fatal("second refreshed arrival should drop (2500 > T_0)")
	}
	if !d.Admit(v, 0, 500) {
		t.Fatalf("third arrival should admit once T_0 caught up (T_0 = %d)",
			d.State().Threshold(0))
	}
	if err := d.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDynaQTofinoPhysicalBound(t *testing.T) {
	d, err := NewDynaQTofino(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stale view says empty, but the traffic manager knows the SRAM is
	// full: the packet must drop regardless.
	v := &fakeView{b: 4000, qlens: []units.ByteSize{4000, 0, 0, 0}}
	if d.Admit(v, 1, 1500) {
		t.Fatal("physical buffer bound must hold even with a stale view")
	}
}
