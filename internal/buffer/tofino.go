package buffer

import (
	"dynaq/internal/core"
	"dynaq/internal/units"
)

// DynaQTofino models the programmable-switch implementation of §IV-A
// ("Implementation on Programmable Switches"): on a Tofino-style pipeline
// the buffering engine (PRE) is fixed-function, so Algorithm 1 runs in the
// ingress pipeline using queue lengths mirrored through an extern register
// that is only refreshed at packet *dequeue* time (the bridged deq_qdepth
// metadata). The ingress therefore decides on stale occupancy; the paper
// conjectures that "with round-robin based schedulers … some inaccuracy is
// tolerable to isolate service queues", which the ext-tofino experiment
// verifies.
//
// The fixed traffic manager still enforces the physical SRAM bound, so the
// final admission gate uses the accurate port occupancy.
type DynaQTofino struct {
	state *core.State
	// snap mirrors deq_qdepth: per-queue occupancy as of that queue's
	// last dequeue (0 until first served).
	snap []units.ByteSize
	li   core.QueueLens // cached adapter over snap (hot path)
}

// NewDynaQTofino builds the stale-queue-length DynaQ variant.
func NewDynaQTofino(b units.ByteSize, weights []int64) (*DynaQTofino, error) {
	st, err := core.New(b, weights)
	if err != nil {
		return nil, err
	}
	d := &DynaQTofino{state: st, snap: make([]units.ByteSize, len(weights))}
	d.li = snapLens(d.snap)
	return d, nil
}

// Name implements Admission.
func (*DynaQTofino) Name() string { return "DynaQ-Tofino" }

// State exposes the threshold state for tests.
func (d *DynaQTofino) State() *core.State { return d.state }

// Snapshot returns the ingress pipeline's (stale) view of queue i.
func (d *DynaQTofino) Snapshot(i int) units.ByteSize { return d.snap[i] }

// Admit implements Admission: Algorithm 1 over the stale register values,
// then the ingress drop decision against the (stale) per-queue threshold
// check, then the traffic manager's physical bound.
func (d *DynaQTofino) Admit(v View, cls int, size units.ByteSize) bool {
	res := d.state.Process(cls, size, d.li)
	if res.Verdict == core.Drop {
		return false
	}
	if d.snap[cls]+size > d.state.Threshold(cls) {
		return false // ingress drop flag from the stale view
	}
	// Fixed-function traffic manager: the SRAM is physically bounded.
	return v.TotalLen()+size <= v.Buffer()
}

// ObserveDequeue implements DequeueObserver: the egress deq_qdepth
// register refresh.
func (d *DynaQTofino) ObserveDequeue(v View, cls int, _ units.ByteSize, _ units.Time) {
	if v != nil {
		d.snap[cls] = v.QueueLen(cls)
	}
}

// snapLens adapts the register file to core.QueueLens.
type snapLens []units.ByteSize

func (s snapLens) QueueLen(i int) units.ByteSize { return s[i] }
