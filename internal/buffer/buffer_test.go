package buffer

import (
	"testing"

	"dynaq/internal/units"
)

// fakeView is a mutable port-state stub.
type fakeView struct {
	b     units.ByteSize
	qlens []units.ByteSize
}

func (f *fakeView) NumQueues() int                { return len(f.qlens) }
func (f *fakeView) QueueLen(i int) units.ByteSize { return f.qlens[i] }
func (f *fakeView) Buffer() units.ByteSize        { return f.b }

func (f *fakeView) TotalLen() units.ByteSize {
	var sum units.ByteSize
	for _, q := range f.qlens {
		sum += q
	}
	return sum
}

func TestBestEffortAdmitsUntilPortFull(t *testing.T) {
	be := NewBestEffort()
	v := &fakeView{b: 10000, qlens: []units.ByteSize{9000, 0}}
	if !be.Admit(v, 1, 1000) {
		t.Error("exact fit must be admitted")
	}
	if be.Admit(v, 1, 1001) {
		t.Error("overflow must be rejected")
	}
	// Queue identity is irrelevant: one queue may hog everything.
	v = &fakeView{b: 10000, qlens: []units.ByteSize{10000, 0}}
	if be.Admit(v, 1, 1) {
		t.Error("full port rejects all queues")
	}
	if be.Name() != "BestEffort" {
		t.Errorf("Name = %q", be.Name())
	}
}

func TestPQLValidation(t *testing.T) {
	if _, err := NewPQL(nil); err == nil {
		t.Error("empty quotas should fail")
	}
	if _, err := NewPQL([]units.ByteSize{100, 0}); err == nil {
		t.Error("zero quota should fail")
	}
	if _, err := NewWeightedPQL(0, []int64{1}); err == nil {
		t.Error("zero buffer should fail")
	}
	if _, err := NewWeightedPQL(100, nil); err == nil {
		t.Error("no weights should fail")
	}
	if _, err := NewWeightedPQL(100, []int64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestPQLEnforcesStaticQuota(t *testing.T) {
	p, err := NewWeightedPQL(85*units.KB, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Quota(0) != 21250 {
		t.Fatalf("quota = %d, want 21250", p.Quota(0))
	}
	v := &fakeView{b: 85 * units.KB, qlens: []units.ByteSize{21000, 0, 0, 0}}
	if p.Admit(v, 0, 250) != true {
		t.Error("within quota must be admitted")
	}
	if p.Admit(v, 0, 251) {
		t.Error("beyond quota must drop, even with free port buffer")
	}
	// Not work-conserving: other queues idle does not help queue 0.
	if got := p.Name(); got != "PQL" {
		t.Errorf("Name = %q", got)
	}
}

func TestDynaQAdmitGrowsIntoIdleQueues(t *testing.T) {
	d, err := NewDynaQ(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Queue 0 at its initial threshold (1000); other queues idle. PQL
	// would drop, DynaQ steals threshold and admits.
	v := &fakeView{b: 4000, qlens: []units.ByteSize{1000, 0, 0, 0}}
	if !d.Admit(v, 0, 500) {
		t.Fatal("DynaQ must admit into free buffer")
	}
	if got := d.State().Threshold(0); got != 1500 {
		t.Fatalf("T_0 = %d after adjust, want 1500", got)
	}
}

func TestDynaQAdmitProtectsUnsatisfiedActiveQueues(t *testing.T) {
	d, err := NewDynaQ(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// All queues active and none above satisfaction: stealing is illegal.
	v := &fakeView{b: 4000, qlens: []units.ByteSize{1000, 500, 500, 500}}
	if d.Admit(v, 0, 500) {
		t.Fatal("DynaQ must protect unsatisfied active victims")
	}
}

func TestDynaQAdmitsUnderOwnThresholdDespiteFullPort(t *testing.T) {
	// Queue 1 monopolized the physical buffer (its backlog exceeds its
	// threshold after being victimized). Queue 0's packet is within its
	// own budget and must be admitted — the over-threshold backlog of the
	// aggressor may not veto the protected queue (see the DynaQ doc
	// comment on per-queue admission).
	d, err := NewDynaQ(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{b: 4000, qlens: []units.ByteSize{500, 3500, 0, 0}}
	if !d.Admit(v, 0, 400) {
		t.Fatal("within-threshold packet must be admitted")
	}
	if d.Name() != "DynaQ" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestDynaQSlashedVictimBacklogDrops(t *testing.T) {
	// A victim whose threshold fell below its standing backlog keeps
	// dropping its own arrivals until it drains back under the threshold.
	d, err := NewDynaQ(4000, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Steal from idle queue 1 into queue 0 a few times.
	v := &fakeView{b: 4000, qlens: []units.ByteSize{1000, 0, 0, 0}}
	for i := 0; i < 3; i++ {
		if !d.Admit(v, 0, 300) {
			t.Fatalf("steal %d rejected", i)
		}
		v.qlens[0] += 300
	}
	// Now pretend queue 1 had a backlog above its reduced threshold.
	v.qlens[1] = d.State().Threshold(1) + 200
	if d.Admit(v, 1, 1500) {
		// Queue 1 may recover threshold via Algorithm 1, but its backlog
		// is above even the raised threshold only if no donor exists;
		// with donors around the admit can succeed. Accept either, but
		// the invariant ΣT = B must hold.
	}
	if err := d.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPerQueueECNValidation(t *testing.T) {
	if _, err := NewPerQueueECN(0, 30*units.KB); err == nil {
		t.Error("zero queues should fail")
	}
	if _, err := NewPerQueueECN(4, 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestPerQueueECNMarksPerQueue(t *testing.T) {
	p, err := NewPerQueueECN(2, 30*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{b: 85 * units.KB, qlens: []units.ByteSize{29 * units.KB, 31 * units.KB}}
	if p.MarkOnEnqueue(v, 0, 500) {
		t.Error("queue under K must not mark")
	}
	if !p.MarkOnEnqueue(v, 1, 500) {
		t.Error("queue over K must mark")
	}
	// Admission is inherited best-effort.
	if !p.Admit(v, 0, 1000) {
		t.Error("PerQueueECN admission should be best-effort")
	}
}

func TestPMSBMarksOnlyWhenBothExceeded(t *testing.T) {
	// K = 60KB, equal weights → K_i = 30KB.
	p, err := NewPMSB(60*units.KB, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Port below K: no marking even for a fat queue ("selective
	// blindness" to transient single-queue bursts).
	v := &fakeView{b: 200 * units.KB, qlens: []units.ByteSize{40 * units.KB, 0}}
	if p.MarkOnEnqueue(v, 0, 1500) {
		t.Error("port below K must not mark")
	}
	// Port above K but this queue under K_i: no marking.
	v = &fakeView{b: 200 * units.KB, qlens: []units.ByteSize{20 * units.KB, 50 * units.KB}}
	if p.MarkOnEnqueue(v, 0, 1500) {
		t.Error("queue below K_i must not mark")
	}
	// Both exceeded: mark.
	if !p.MarkOnEnqueue(v, 1, 1500) {
		t.Error("port over K and queue over K_i must mark")
	}
	if p.Name() != "PMSB" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestDynaQECNIsPMSBMarking(t *testing.T) {
	d, err := NewDynaQECN(60*units.KB, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DynaQ-ECN" {
		t.Errorf("Name = %q", d.Name())
	}
	v := &fakeView{b: 200 * units.KB, qlens: []units.ByteSize{31 * units.KB, 31 * units.KB}}
	if !d.MarkOnEnqueue(v, 0, 1500) {
		t.Error("DynaQ-ECN must apply PMSB marking")
	}
}

func TestTCNSojournMarking(t *testing.T) {
	c, err := NewTCN(240 * units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if c.MarkOnDequeue(0, 240*units.Microsecond) {
		t.Error("sojourn at threshold must not mark")
	}
	if !c.MarkOnDequeue(0, 241*units.Microsecond) {
		t.Error("sojourn above threshold must mark")
	}
	if _, err := NewTCN(0); err == nil {
		t.Error("zero threshold should fail")
	}
	if c.Name() != "TCN" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestTCNDrop(t *testing.T) {
	c, err := NewTCNDrop(240 * units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if c.DropOnDequeue(0, 100*units.Microsecond) {
		t.Error("short sojourn must not drop")
	}
	if !c.DropOnDequeue(0, 300*units.Microsecond) {
		t.Error("long sojourn must drop")
	}
	if _, err := NewTCNDrop(0); err == nil {
		t.Error("zero threshold should fail")
	}
	if c.Name() != "TCNDrop" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestMQECNValidation(t *testing.T) {
	q := []units.ByteSize{1500, 1500}
	if _, err := NewMQECN(0, units.Microsecond, q); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewMQECN(units.Gbps, 0, q); err == nil {
		t.Error("zero RTT·λ should fail")
	}
	if _, err := NewMQECN(units.Gbps, units.Microsecond, nil); err == nil {
		t.Error("no quantums should fail")
	}
	if _, err := NewMQECN(units.Gbps, units.Microsecond, []units.ByteSize{0}); err == nil {
		t.Error("zero quantum should fail")
	}
}

func TestMQECNThresholdBeforeAnySample(t *testing.T) {
	// With no round-time estimate, K_i is the standard threshold C·RTT·λ.
	m, err := NewMQECN(units.Gbps, 300*units.Microsecond, []units.ByteSize{1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	want := units.BDP(units.Gbps, 300*units.Microsecond) // 37500B
	if got := m.QueueThreshold(0); got != want {
		t.Fatalf("K_0 = %d, want %d", got, want)
	}
}

func TestMQECNRoundEstimationScalesThreshold(t *testing.T) {
	m, err := NewMQECN(units.Gbps, 300*units.Microsecond, []units.ByteSize{1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	// Two queues served alternately, each round taking 24µs
	// (two 1500B packets at 1Gbps). Feed several rounds.
	now := units.Time(0)
	for r := 0; r < 50; r++ {
		m.ObserveDequeue(nil, 0, 1500, now)
		now = now.Add(12 * units.Microsecond)
		m.ObserveDequeue(nil, 1, 1500, now)
		now = now.Add(12 * units.Microsecond)
	}
	if m.RoundTime() <= 0 {
		t.Fatal("round time not estimated")
	}
	// rate_i = 1500B / 24µs = 500Mbps → K_i = half the standard threshold.
	got := m.QueueThreshold(0)
	want := units.BDP(500*units.Mbps, 300*units.Microsecond)
	tol := want / 10
	if got < want-tol || got > want+tol {
		t.Fatalf("K_0 = %d, want ≈%d (tRound=%v)", got, want, m.RoundTime())
	}
	// Marking uses the scaled threshold.
	v := &fakeView{b: 200 * units.KB, qlens: []units.ByteSize{got + 1, 0}}
	if !m.MarkOnEnqueue(v, 0, 1500) {
		t.Error("queue above scaled K_i must mark")
	}
	if m.Name() != "MQ-ECN" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMQECNSingleActiveQueueKeepsFullThreshold(t *testing.T) {
	// When one queue gets the whole link, its estimated rate is the link
	// rate, so K_i must stay at the standard threshold (work conservation
	// of the marking scheme).
	m, err := NewMQECN(units.Gbps, 300*units.Microsecond, []units.ByteSize{1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	now := units.Time(0)
	for r := 0; r < 50; r++ {
		m.ObserveDequeue(nil, 0, 1500, now) // same queue: wraps every dequeue
		now = now.Add(12 * units.Microsecond)
	}
	want := units.BDP(units.Gbps, 300*units.Microsecond)
	if got := m.QueueThreshold(0); got != want {
		t.Fatalf("K_0 = %d, want full threshold %d", got, want)
	}
}
