package buffer

import (
	"fmt"

	"dynaq/internal/units"
)

// MQECN implements MQ-ECN (Bai et al., NSDI'16): per-queue marking
// thresholds scaled by the scheduler's estimated round time,
//
//	K_i = min(quantum_i / T_round, C) · RTT · λ
//
// so that a queue's threshold reflects the service rate it currently
// receives. T_round is estimated online: a new round starts whenever the
// round-robin service order wraps (the served queue index is ≤ the
// previously served index), and the observed round duration feeds an EWMA.
//
// §II-C notes the key drawback reproduced here: the round-time concept is
// undefined for strict-priority schedulers, so MQ-ECN only composes with
// round-robin scheduling. Buffer admission is best-effort.
type MQECN struct {
	BestEffort

	c         units.Rate
	rttLambda units.Duration // RTT·λ
	quantum   []units.ByteSize

	tRound     units.Duration // EWMA of the round duration; 0 = no sample yet
	roundStart units.Time
	started    bool
	prevServed int
	gain       float64 // EWMA weight of the new sample
}

// NewMQECN builds MQ-ECN for a port of capacity c, with per-queue quantums
// and an rtt·λ product (the "standard threshold" numerator).
func NewMQECN(c units.Rate, rttLambda units.Duration, quantums []units.ByteSize) (*MQECN, error) {
	if c <= 0 {
		return nil, fmt.Errorf("buffer: MQ-ECN capacity %v must be positive", c)
	}
	if rttLambda <= 0 {
		return nil, fmt.Errorf("buffer: MQ-ECN RTT·λ %v must be positive", rttLambda)
	}
	if len(quantums) == 0 {
		return nil, fmt.Errorf("buffer: MQ-ECN needs at least one queue")
	}
	for i, q := range quantums {
		if q <= 0 {
			return nil, fmt.Errorf("buffer: MQ-ECN quantum of queue %d is %d, must be positive", i, q)
		}
	}
	return &MQECN{
		c:         c,
		rttLambda: rttLambda,
		quantum:   append([]units.ByteSize(nil), quantums...),
		gain:      0.25,
	}, nil
}

// Name implements Admission.
func (*MQECN) Name() string { return "MQ-ECN" }

// QueueThreshold returns the current K_i for queue i.
func (m *MQECN) QueueThreshold(i int) units.ByteSize {
	// Standard threshold when the queue is (estimated to be) served at
	// link rate: K = C·RTT·λ.
	full := m.c.BytesIn(m.rttLambda)
	if m.tRound <= 0 {
		return full
	}
	// rate_i = quantum_i / T_round, capped at C. Computed in float: the
	// quantities are small and this is a threshold, not an invariant.
	rate := float64(m.quantum[i].Bits()) / m.tRound.Seconds()
	if rate >= float64(m.c) {
		return full
	}
	return units.ByteSize(rate * m.rttLambda.Seconds() / 8)
}

// MarkOnEnqueue implements EnqueueMarker.
func (m *MQECN) MarkOnEnqueue(v View, cls int, size units.ByteSize) bool {
	return v.QueueLen(cls)+size > m.QueueThreshold(cls)
}

// ObserveDequeue implements DequeueObserver: it detects round boundaries
// from the service order and maintains the round-time EWMA.
func (m *MQECN) ObserveDequeue(_ View, cls int, _ units.ByteSize, now units.Time) {
	if !m.started {
		m.started = true
		m.roundStart = now
		m.prevServed = cls
		return
	}
	if cls <= m.prevServed {
		// Service order wrapped: one full round elapsed.
		sample := now.Sub(m.roundStart)
		m.roundStart = now
		if sample > 0 {
			if m.tRound == 0 {
				m.tRound = sample
			} else {
				m.tRound = units.Duration(float64(m.tRound)*(1-m.gain) + float64(sample)*m.gain)
			}
		}
	}
	m.prevServed = cls
}

// RoundTime exposes the current round-time estimate (for tests).
func (m *MQECN) RoundTime() units.Duration { return m.tRound }
