// Package buffer implements the multi-queue buffer-management schemes the
// paper compares (§II-C, §V):
//
//   - BestEffort — the shared-buffer baseline: admit while the port buffer
//     has room, first come first buffered.
//   - PQL — per-queue static limits ("per-queue length"): each service
//     queue owns a fixed quota; isolating but not work-conserving.
//   - DynaQ — the paper's contribution, wrapping internal/core.
//   - Per-Queue ECN — standard DCTCP-style marking per queue.
//   - PMSB — per-port marking with selective blindness (ICDCS'18): mark
//     only when port AND queue thresholds are both exceeded.
//   - MQ-ECN — round-time-scaled per-queue marking (NSDI'16).
//   - TCN — sojourn-time dequeue marking (CoNEXT'16), plus the
//     drop-at-dequeue variant §II-C argues against (kept as an ablation).
//
// A scheme is an Admission policy plus optionally enqueue/dequeue marking
// hooks; the switch port drives them.
package buffer

import (
	"fmt"

	"dynaq/internal/core"
	"dynaq/internal/units"
)

// View is the port state an admission or marking decision may consult.
type View interface {
	// NumQueues returns the number of service queues of the port.
	NumQueues() int
	// QueueLen returns queue i's backlog in bytes.
	QueueLen(i int) units.ByteSize
	// TotalLen returns the port buffer occupancy in bytes (Σ q_i).
	TotalLen() units.ByteSize
	// Buffer returns the port buffer size B.
	Buffer() units.ByteSize
}

// Admission decides whether an arriving packet may be enqueued.
type Admission interface {
	// Name identifies the scheme in result tables.
	Name() string
	// Admit reports whether a packet of the given size arriving for
	// service queue cls may be buffered.
	Admit(v View, cls int, size units.ByteSize) bool
}

// EnqueueMarker is implemented by schemes that CE-mark at enqueue time.
type EnqueueMarker interface {
	// MarkOnEnqueue reports whether the arriving packet must be CE-marked.
	// It is called only for packets that were admitted, with the queue
	// state observed before the packet is enqueued.
	MarkOnEnqueue(v View, cls int, size units.ByteSize) bool
}

// DequeueMarker is implemented by schemes that mark at dequeue time based on
// the packet's sojourn through the queue (TCN).
type DequeueMarker interface {
	// MarkOnDequeue reports whether the departing packet must be CE-marked
	// given its queue sojourn time.
	MarkOnDequeue(cls int, sojourn units.Duration) bool
}

// DequeueDropper is implemented by the TCN-drop ablation: drop the departing
// packet instead of marking it. §II-C explains why this wastes link time.
type DequeueDropper interface {
	// DropOnDequeue reports whether the departing packet must be discarded.
	DropOnDequeue(cls int, sojourn units.Duration) bool
}

// DequeueObserver is implemented by schemes that need to observe dequeue
// operations: MQ-ECN estimates the scheduler round time from the service
// order, and the Tofino model snapshots deq_qdepth. The view reflects the
// port state after the packet left the queue.
type DequeueObserver interface {
	// ObserveDequeue is called after every dequeue with the served queue,
	// the departed size, and the current simulated time.
	ObserveDequeue(v View, cls int, size units.ByteSize, now units.Time)
}

// BestEffort shares the port buffer in a first-come-first-buffered manner:
// a packet is admitted while the port has room, with no per-queue
// accounting. This is the baseline whose unfairness motivates the paper
// (Fig. 1).
type BestEffort struct{}

// NewBestEffort returns the shared-buffer baseline.
func NewBestEffort() *BestEffort { return &BestEffort{} }

// Name implements Admission.
func (*BestEffort) Name() string { return "BestEffort" }

// Admit implements Admission.
func (*BestEffort) Admit(v View, _ int, size units.ByteSize) bool {
	return v.TotalLen()+size <= v.Buffer()
}

// PQL reserves a static buffer quota per service queue ("Per-Queue Limit").
// Each queue enjoys its share regardless of others, but a queue can never
// use free buffer beyond its quota, so the scheme is not work-conserving
// (§II-C).
type PQL struct {
	quota []units.ByteSize
}

// NewPQL builds PQL from explicit per-queue quotas.
func NewPQL(quotas []units.ByteSize) (*PQL, error) {
	if len(quotas) == 0 {
		return nil, fmt.Errorf("buffer: PQL needs at least one queue")
	}
	for i, q := range quotas {
		if q <= 0 {
			return nil, fmt.Errorf("buffer: PQL quota of queue %d is %d, must be positive", i, q)
		}
	}
	return &PQL{quota: append([]units.ByteSize(nil), quotas...)}, nil
}

// NewWeightedPQL splits buffer b across queues in proportion to the
// scheduler weights — the static analogue of DynaQ's initialization.
func NewWeightedPQL(b units.ByteSize, weights []int64) (*PQL, error) {
	if b <= 0 {
		return nil, fmt.Errorf("buffer: PQL buffer %d must be positive", b)
	}
	var sum int64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("buffer: weight of queue %d is %d, must be positive", i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("buffer: PQL needs at least one queue")
	}
	quotas := make([]units.ByteSize, len(weights))
	for i, w := range weights {
		quotas[i] = units.ByteSize(int64(b) * w / sum)
	}
	return NewPQL(quotas)
}

// Name implements Admission.
func (*PQL) Name() string { return "PQL" }

// Admit implements Admission.
func (p *PQL) Admit(v View, cls int, size units.ByteSize) bool {
	return v.QueueLen(cls)+size <= p.quota[cls]
}

// Quota returns queue i's static limit.
func (p *PQL) Quota(i int) units.ByteSize { return p.quota[i] }

// DynaQ adapts core.State to the Admission interface: Algorithm 1 first,
// then the enqueue check against the queue's (possibly just-raised) dynamic
// threshold.
//
// On the enqueue check: §IV-B says the switch enqueues "based on the port
// buffer occupancy or per-queue buffer occupancy relying on switch
// configuration" — and DynaQ's configuration is the per-queue dynamic
// threshold. Since Σ T_i = B, per-queue admission implies Σ q_i ≤ B, except
// transiently when a victim queue's threshold was slashed below its
// standing backlog; that backlog drains within one buffer-worth of link
// time. Checking raw port occupancy instead would let such a stale backlog
// permanently veto the protected queue's (legitimately budgeted) arrivals —
// the aggressor keeps the SRAM it no longer owns, and a drained victim
// whose retransmissions always find the port full never becomes "active"
// again, a starvation loop the threshold protection exists to prevent. The
// paper's qdisc prototype has the same accounting-only buffer, where the
// transient overshoot is harmless.
type DynaQ struct {
	state *core.State
	name  string
	// lens adapts the current View to core.QueueLens without a per-packet
	// interface allocation (hot path: every arrival).
	lens viewLens
	li   core.QueueLens

	// Telemetry counters (plain int64s so the hot path never touches the
	// registry; internal/netsim exposes them as counter funcs).
	adjustments int64
	algDrops    int64
	satTrans    []int64
	satisfied   []bool
}

// NewDynaQ builds the DynaQ scheme for a port with buffer b and scheduler
// weights.
func NewDynaQ(b units.ByteSize, weights []int64) (*DynaQ, error) {
	st, err := core.New(b, weights)
	if err != nil {
		return nil, err
	}
	d := &DynaQ{state: st, name: "DynaQ"}
	d.initTelemetry()
	d.li = &d.lens
	return d, nil
}

// NewDynaQWithOptions builds a DynaQ variant with core ablation options
// (victim policy, WBDP satisfaction) for the design-choice experiments.
func NewDynaQWithOptions(name string, b units.ByteSize, weights []int64, opts ...core.Option) (*DynaQ, error) {
	st, err := core.NewWithOptions(b, weights, opts...)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "DynaQ"
	}
	d := &DynaQ{state: st, name: name}
	d.initTelemetry()
	d.li = &d.lens
	return d, nil
}

// initTelemetry sizes the satisfied-state trackers. Every queue starts
// satisfied: initialization sets T_i = S_i (Eq. 1 and Eq. 3 coincide),
// except under the WBDP ablation where S_i may exceed the initial T_i.
func (d *DynaQ) initTelemetry() {
	n := d.state.NumQueues()
	d.satTrans = make([]int64, n)
	d.satisfied = make([]bool, n)
	for i := 0; i < n; i++ {
		d.satisfied[i] = d.state.Satisfied(i)
	}
}

// noteSatisfaction counts a satisfied↔unsatisfied edge of queue i — the
// paper's per-instant "satisfied" state (footnote 1), surfaced so telemetry
// can report how often protection engages.
func (d *DynaQ) noteSatisfaction(i int) {
	if i < 0 {
		return
	}
	if now := d.state.Satisfied(i); now != d.satisfied[i] {
		d.satisfied[i] = now
		d.satTrans[i]++
	}
}

// Adjustments counts Algorithm 1 threshold recomputations (Adjusted
// verdicts: one victim decrement plus one growth per adjustment).
func (d *DynaQ) Adjustments() int64 { return d.adjustments }

// AlgorithmDrops counts packets Algorithm 1 itself refused (victim
// protection), as opposed to the port-level post-adjustment check.
func (d *DynaQ) AlgorithmDrops() int64 { return d.algDrops }

// SatisfiedTransitions counts queue i's satisfied↔unsatisfied edges.
func (d *DynaQ) SatisfiedTransitions(i int) int64 { return d.satTrans[i] }

// Name implements Admission.
func (d *DynaQ) Name() string { return d.name }

// State exposes the underlying threshold state for traces and tests.
func (d *DynaQ) State() *core.State { return d.state }

// Admit implements Admission.
func (d *DynaQ) Admit(v View, cls int, size units.ByteSize) bool {
	d.lens.v = v
	res := d.state.Process(cls, size, d.li)
	switch res.Verdict {
	case core.Adjusted:
		d.adjustments++
		d.noteSatisfaction(cls)
		d.noteSatisfaction(res.Victim)
	case core.Drop:
		d.algDrops++
	}
	if res.Verdict == core.Drop {
		return false
	}
	// Post-adjustment per-queue check. After Pass this always holds; after
	// Adjusted it fails only when the queue's own threshold had been
	// slashed below its backlog while it was a victim.
	return v.QueueLen(cls)+size <= d.state.Threshold(cls)
}

// viewLens adapts a buffer.View to core.QueueLens; schemes hold one and
// repoint it per call so the hot path stays allocation-free.
type viewLens struct{ v View }

func (l *viewLens) QueueLen(i int) units.ByteSize { return l.v.QueueLen(i) }

// PerQueueECN is conventional DCTCP-style marking applied independently per
// service queue: mark when the queue's standing backlog would exceed K_i.
// Buffer admission is best-effort.
type PerQueueECN struct {
	BestEffort

	k []units.ByteSize
}

// NewPerQueueECN builds per-queue marking with the same threshold k for
// every one of n queues.
func NewPerQueueECN(n int, k units.ByteSize) (*PerQueueECN, error) {
	if n <= 0 {
		return nil, fmt.Errorf("buffer: PerQueueECN needs at least one queue")
	}
	if k <= 0 {
		return nil, fmt.Errorf("buffer: PerQueueECN threshold %d must be positive", k)
	}
	ks := make([]units.ByteSize, n)
	for i := range ks {
		ks[i] = k
	}
	return &PerQueueECN{k: ks}, nil
}

// Name implements Admission.
func (*PerQueueECN) Name() string { return "PerQueueECN" }

// MarkOnEnqueue implements EnqueueMarker.
func (p *PerQueueECN) MarkOnEnqueue(v View, cls int, size units.ByteSize) bool {
	return v.QueueLen(cls)+size > p.k[cls]
}

// PMSB marks a packet only when the per-port and per-queue marking
// conditions hold simultaneously (Pan et al., ICDCS'18), with
// K = C·RTT·λ and K_i = (w_i/Σw)·K. It is also DynaQ's ECN mode (§III-B3).
// Buffer admission is best-effort.
type PMSB struct {
	BestEffort

	mode *core.ECNMode
	name string
}

// NewPMSB builds PMSB marking with port threshold k split across queues by
// weight.
func NewPMSB(k units.ByteSize, weights []int64) (*PMSB, error) {
	mode, err := core.NewECNMode(k, weights)
	if err != nil {
		return nil, err
	}
	return &PMSB{mode: mode, name: "PMSB"}, nil
}

// NewDynaQECN builds DynaQ's ECN mode, which the paper defines to be PMSB
// marking (it differs from PMSB only in name, per §III-B3).
func NewDynaQECN(k units.ByteSize, weights []int64) (*PMSB, error) {
	p, err := NewPMSB(k, weights)
	if err != nil {
		return nil, err
	}
	p.name = "DynaQ-ECN"
	return p, nil
}

// Name implements Admission.
func (p *PMSB) Name() string { return p.name }

// MarkOnEnqueue implements EnqueueMarker.
func (p *PMSB) MarkOnEnqueue(v View, cls int, _ units.ByteSize) bool {
	return p.mode.ShouldMark(cls, v.TotalLen(), v.QueueLen(cls))
}

// TCN marks at dequeue time when the packet's sojourn time through the
// queue exceeds T = RTT·λ (Bai et al., CoNEXT'16). Buffer admission is
// best-effort.
type TCN struct {
	BestEffort

	t units.Duration
}

// NewTCN builds TCN with sojourn threshold t (the paper's testbed uses
// 240µs on 1GbE).
func NewTCN(t units.Duration) (*TCN, error) {
	if t <= 0 {
		return nil, fmt.Errorf("buffer: TCN threshold %v must be positive", t)
	}
	return &TCN{t: t}, nil
}

// Name implements Admission.
func (*TCN) Name() string { return "TCN" }

// MarkOnDequeue implements DequeueMarker.
func (c *TCN) MarkOnDequeue(_ int, sojourn units.Duration) bool {
	return sojourn > c.t
}

// TCNDrop is the "change TCN to drop" strawman of §II-C: discard the
// just-dequeued packet when its sojourn exceeded the threshold. The paper
// rejects it because dropping at dequeue idles the link and adds the full
// sojourn time to the FCT on top of the RTO; it is implemented here to
// reproduce that argument as an ablation.
type TCNDrop struct {
	BestEffort

	t units.Duration
}

// NewTCNDrop builds the dequeue-dropping TCN variant.
func NewTCNDrop(t units.Duration) (*TCNDrop, error) {
	if t <= 0 {
		return nil, fmt.Errorf("buffer: TCNDrop threshold %v must be positive", t)
	}
	return &TCNDrop{t: t}, nil
}

// Name implements Admission.
func (*TCNDrop) Name() string { return "TCNDrop" }

// DropOnDequeue implements DequeueDropper.
func (c *TCNDrop) DropOnDequeue(_ int, sojourn units.Duration) bool {
	return sojourn > c.t
}
