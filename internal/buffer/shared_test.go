package buffer

import (
	"testing"

	"dynaq/internal/units"
)

func TestSharedPoolAccounting(t *testing.T) {
	if _, err := NewSharedPool(0); err == nil {
		t.Error("zero pool should fail")
	}
	p, err := NewSharedPool(10000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 10000 || p.Free() != 10000 || p.Used() != 0 {
		t.Fatal("fresh pool accounting wrong")
	}
	if !p.Reserve(6000) {
		t.Fatal("reserve within pool failed")
	}
	if p.Reserve(5000) {
		t.Fatal("over-reserve succeeded")
	}
	if !p.Reserve(4000) {
		t.Fatal("exact-fit reserve failed")
	}
	p.Release(10000)
	if p.Used() != 0 {
		t.Fatalf("used = %d after full release", p.Used())
	}
}

func TestSharedPoolUnderflowPanics(t *testing.T) {
	p, _ := NewSharedPool(1000)
	defer func() {
		if recover() == nil {
			t.Error("want panic on release underflow")
		}
	}()
	p.Release(1)
}

func TestDTValidation(t *testing.T) {
	pool, _ := NewSharedPool(100 * units.KB)
	if _, err := NewDT(nil, 1); err == nil {
		t.Error("nil pool should fail")
	}
	if _, err := NewDT(pool, 0); err == nil {
		t.Error("zero alpha should fail")
	}
}

func TestDTThresholdTracksFreePool(t *testing.T) {
	pool, _ := NewSharedPool(100 * units.KB)
	dt, err := NewDT(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Name() != "DT" || dt.Pool() != pool {
		t.Fatal("metadata wrong")
	}
	// Empty pool: a port may take up to α·free = 100KB.
	v := &fakeView{b: 100 * units.KB, qlens: []units.ByteSize{50 * units.KB}}
	if !dt.Admit(v, 0, 1500) {
		t.Fatal("admission under threshold refused")
	}
	// Another port reserved 80KB: free = 20KB, so this port (holding
	// 50KB) is far over α·free and must drop.
	pool.Reserve(80 * units.KB)
	if dt.Admit(v, 0, 1500) {
		t.Fatal("DT must tighten as the pool drains")
	}
	// With α = 2 the same state admits while the port stays below 40KB.
	dt2, _ := NewDT(pool, 2)
	v2 := &fakeView{b: 100 * units.KB, qlens: []units.ByteSize{30 * units.KB}}
	if !dt2.Admit(v2, 0, 1500) {
		t.Fatal("α=2 should admit below 2·free")
	}
}

func TestBarberQEvictsLongestOverShareQueue(t *testing.T) {
	b := NewBarberQ()
	if b.Name() != "BarberQ" {
		t.Fatalf("Name = %q", b.Name())
	}
	// 4 queues, 80KB buffer → fair share 20KB. Queue 2 hogs 60KB; the
	// arrival for queue 0 (2KB held) is under-share: evict from queue 2.
	v := &fakeView{b: 80 * units.KB, qlens: []units.ByteSize{
		2 * units.KB, 10 * units.KB, 60 * units.KB, 8 * units.KB}}
	if got := b.EvictFor(v, 0, 1500); got != 2 {
		t.Fatalf("EvictFor = %d, want 2 (longest over-share queue)", got)
	}
	// An over-share arrival gets no eviction help.
	if got := b.EvictFor(v, 2, 1500); got != -1 {
		t.Fatalf("EvictFor(hog) = %d, want -1", got)
	}
	// Nobody over share: drop the arrival.
	v2 := &fakeView{b: 80 * units.KB, qlens: []units.ByteSize{
		19 * units.KB, 19 * units.KB, 19 * units.KB, 19 * units.KB}}
	if got := b.EvictFor(v2, 0, 1500); got != -1 {
		t.Fatalf("EvictFor(balanced) = %d, want -1", got)
	}
	// Admission itself is best-effort.
	if !b.Admit(v2, 0, 1500) {
		t.Fatal("BarberQ admission should be best-effort")
	}
}
