package buffer

import (
	"testing"

	"dynaq/internal/units"
)

// benchView is a fixed 8-queue port state for admission benchmarks.
func benchView() *fakeView {
	return &fakeView{
		b: 192 * units.KB,
		qlens: []units.ByteSize{
			24 * units.KB, 24 * units.KB, 24 * units.KB, 24 * units.KB,
			0, 0, 0, 0,
		},
	}
}

func eightWeights() []int64 { return []int64{1, 1, 1, 1, 1, 1, 1, 1} }

func BenchmarkAdmitBestEffort(b *testing.B) {
	be := NewBestEffort()
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		be.Admit(v, i%8, 1500)
	}
}

func BenchmarkAdmitPQL(b *testing.B) {
	p, err := NewWeightedPQL(192*units.KB, eightWeights())
	if err != nil {
		b.Fatal(err)
	}
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Admit(v, i%8, 1500)
	}
}

func BenchmarkAdmitDynaQ(b *testing.B) {
	d, err := NewDynaQ(192*units.KB, eightWeights())
	if err != nil {
		b.Fatal(err)
	}
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Admit(v, i%8, 1500)
	}
}

func BenchmarkAdmitDynaQTofino(b *testing.B) {
	d, err := NewDynaQTofino(192*units.KB, eightWeights())
	if err != nil {
		b.Fatal(err)
	}
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Admit(v, i%8, 1500)
	}
}

func BenchmarkMarkPMSB(b *testing.B) {
	p, err := NewPMSB(60*units.KB, eightWeights())
	if err != nil {
		b.Fatal(err)
	}
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.MarkOnEnqueue(v, i%8, 1500)
	}
}

func BenchmarkMarkMQECN(b *testing.B) {
	quantums := make([]units.ByteSize, 8)
	for i := range quantums {
		quantums[i] = 1500
	}
	m, err := NewMQECN(10*units.Gbps, 84*units.Microsecond, quantums)
	if err != nil {
		b.Fatal(err)
	}
	v := benchView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MarkOnEnqueue(v, i%8, 1500)
		m.ObserveDequeue(v, i%8, 1500, units.Time(i)*units.Time(units.Microsecond))
	}
}
