package buffer

import (
	"fmt"

	"dynaq/internal/units"
)

// SharedPool models a shared-memory switch: every port draws buffer from
// one pool instead of owning a private slice. §II-C discusses this regime
// ("many switches allow a single port to occupy many buffers") and argues
// it cannot isolate service queues; the DT scheme below plus the
// shared-memory experiment reproduce that argument.
type SharedPool struct {
	total units.ByteSize
	used  units.ByteSize
}

// NewSharedPool builds a pool of the given total size.
func NewSharedPool(total units.ByteSize) (*SharedPool, error) {
	if total <= 0 {
		return nil, fmt.Errorf("buffer: pool size %d must be positive", total)
	}
	return &SharedPool{total: total}, nil
}

// Total returns the pool size.
func (p *SharedPool) Total() units.ByteSize { return p.total }

// Used returns the bytes currently reserved.
func (p *SharedPool) Used() units.ByteSize { return p.used }

// Free returns the unreserved bytes.
func (p *SharedPool) Free() units.ByteSize { return p.total - p.used }

// Reserve takes n bytes from the pool, reporting whether they fit.
func (p *SharedPool) Reserve(n units.ByteSize) bool {
	if p.used+n > p.total {
		return false
	}
	p.used += n
	return true
}

// Release returns n bytes to the pool.
func (p *SharedPool) Release(n units.ByteSize) {
	p.used -= n
	if p.used < 0 {
		panic("buffer: pool release underflow")
	}
}

// DT is the classic dynamic-threshold algorithm (Choudhury & Hahne) for
// sharing a memory pool across ports: a port may buffer up to α times the
// remaining free pool. It performs no per-queue accounting inside the port
// — which is exactly why §II-C rejects it for service-queue isolation:
// "even we allocate a large buffer size to a port, bandwidth cannot be
// shared fairly since aggressive queues eventually fill up the buffer. It
// also harms per-port fairness."
type DT struct {
	pool  *SharedPool
	alpha float64
}

// NewDT builds a DT admission scheme drawing from pool with the given α
// (typical hardware default: 1 or 2).
func NewDT(pool *SharedPool, alpha float64) (*DT, error) {
	if pool == nil {
		return nil, fmt.Errorf("buffer: DT needs a pool")
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("buffer: DT alpha %v must be positive", alpha)
	}
	return &DT{pool: pool, alpha: alpha}, nil
}

// Name implements Admission.
func (*DT) Name() string { return "DT" }

// Pool returns the underlying shared pool (ports attach to it).
func (d *DT) Pool() *SharedPool { return d.pool }

// Admit implements Admission: the port's occupancy (plus the arrival) must
// stay below α·(free pool). The port separately reserves the bytes from
// the pool, so two ports can never over-commit the memory.
func (d *DT) Admit(v View, _ int, size units.ByteSize) bool {
	return float64(v.TotalLen()+size) <= d.alpha*float64(d.pool.Free())
}

// Evictor is implemented by schemes that, instead of dropping an arriving
// packet, push out an already-buffered packet of another queue — BarberQ's
// approach to absorbing latency-sensitive microbursts (reference [12] of
// the paper; §II-C: "packet eviction is an effective technique to absorb
// latency-sensitive microbursts").
type Evictor interface {
	// EvictFor is consulted when an arriving packet for queue cls was
	// refused admission. It returns the queue whose tail packet should be
	// evicted to make room, or -1 to drop the arrival instead. The port
	// re-runs admission after each eviction.
	EvictFor(v View, cls int, size units.ByteSize) int
}

// BarberQ shares the buffer best-effort but, when the port is full, evicts
// from the longest queue as long as the arriving packet's queue holds less
// than its fair share of the buffer. Small-queue microbursts therefore
// displace buffer hogs instead of being dropped.
type BarberQ struct {
	BestEffort
}

// NewBarberQ returns the eviction-based scheme.
func NewBarberQ() *BarberQ { return &BarberQ{} }

// Name implements Admission.
func (*BarberQ) Name() string { return "BarberQ" }

// EvictFor implements Evictor.
func (b *BarberQ) EvictFor(v View, cls int, size units.ByteSize) int {
	fairShare := v.Buffer() / units.ByteSize(v.NumQueues())
	if v.QueueLen(cls)+size > fairShare {
		return -1 // the arrival is not an under-share victim: drop it
	}
	longest, longestLen := -1, units.ByteSize(0)
	for i := 0; i < v.NumQueues(); i++ {
		if i == cls {
			continue
		}
		if l := v.QueueLen(i); l > longestLen {
			longest, longestLen = i, l
		}
	}
	if longestLen <= fairShare {
		return -1 // nobody is over their share: drop the arrival
	}
	return longest
}
