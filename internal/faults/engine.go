package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"dynaq/internal/netsim"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// Engine arms a validated fault schedule on the discrete-event simulator.
//
// Determinism: every random draw is pinned at Schedule time. Flap jitter is
// drawn from one generator seeded with the engine seed, consumed in spec
// order (never inside event callbacks, where the interleaving of unrelated
// events could reorder draws). Each link that gets a loss or corruption rate
// receives its own variate source seeded from the engine seed and the
// link's registered name, so adding a fault on one link never perturbs the
// draws of another.
type Engine struct {
	sim  *sim.Simulator
	reg  *Registry
	seed int64

	timeline []Transition
	seeded   map[string]bool // links already given a per-link rand source
	observer func(Transition)
}

// SetObserver installs a callback invoked at fire time for every transition,
// after it has been applied. The telemetry layer uses it to stream fault
// events into the run artifact in simulation order.
func (e *Engine) SetObserver(fn func(Transition)) { e.observer = fn }

// Applied reports how many transitions have fired so far.
func (e *Engine) Applied() int { return len(e.timeline) }

// NewEngine binds a registry to a simulator. The seed fixes the flap jitter
// and all per-link loss/corruption variate streams.
func NewEngine(s *sim.Simulator, reg *Registry, seed int64) *Engine {
	return &Engine{sim: s, reg: reg, seed: seed, seeded: make(map[string]bool)}
}

// plan is one fully resolved fault action, computed before any event is
// armed so a bad spec leaves the simulator untouched.
type plan struct {
	at     units.Time
	target string
	apply  func()
	action string
}

// Schedule validates every spec, resolves every target, precomputes all
// transitions (including jittered flap toggles), and arms them as simulator
// events. On error nothing is armed.
func (e *Engine) Schedule(specs []Spec) error {
	if err := Validate(specs); err != nil {
		return err
	}
	jitter := rand.New(rand.NewSource(e.seed))
	var plans []plan
	for i, s := range specs {
		links, err := e.reg.Resolve(s.Target)
		if err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
		switch s.Kind {
		case KindDown:
			plans = append(plans, e.togglePlan(s, links, s.AtS, true))
			if s.UntilS > 0 {
				plans = append(plans, e.togglePlan(s, links, s.UntilS, false))
			}
		case KindUp:
			plans = append(plans, e.togglePlan(s, links, s.AtS, false))
		case KindFlap:
			// All toggle instants are drawn now, in spec order, so the
			// timeline is independent of event interleaving at run time.
			down := true
			for t := s.AtS; t < s.UntilS; t += s.PeriodS / 2 {
				at := t
				if s.JitterS > 0 && t > s.AtS {
					at += (2*jitter.Float64() - 1) * s.JitterS
				}
				if at >= s.UntilS {
					break
				}
				plans = append(plans, e.togglePlan(s, links, at, down))
				down = !down
			}
			plans = append(plans, e.togglePlan(s, links, s.UntilS, false))
		case KindLoss, KindCorrupt:
			plans = append(plans, e.ratePlan(s, links, s.AtS, s.Rate))
			if s.UntilS > 0 {
				plans = append(plans, e.ratePlan(s, links, s.UntilS, 0))
			}
		}
	}
	sort.SliceStable(plans, func(a, b int) bool { return plans[a].at < plans[b].at })
	for _, pl := range plans {
		pl := pl
		e.sim.At(pl.at, func() {
			pl.apply()
			tr := Transition{At: pl.at, Target: pl.target, Action: pl.action}
			e.timeline = append(e.timeline, tr)
			if e.observer != nil {
				e.observer(tr)
			}
		})
	}
	return nil
}

func (e *Engine) togglePlan(s Spec, links []*netsim.Link, atS float64, down bool) plan {
	action := "up"
	if down {
		action = "down"
	}
	return plan{
		at:     units.Time(0).Add(units.Seconds(atS)),
		target: s.Target,
		action: action,
		apply: func() {
			for _, l := range links {
				l.SetDown(down)
			}
		},
	}
}

func (e *Engine) ratePlan(s Spec, links []*netsim.Link, atS, rate float64) plan {
	// Variate sources are installed at schedule time, not fire time, so a
	// link's draw stream is fixed before any packet can consult it.
	if rate > 0 {
		e.seedLinks(s.Target, links)
	}
	kind := s.Kind
	action := fmt.Sprintf("%s=%v", kind, rate)
	return plan{
		at:     units.Time(0).Add(units.Seconds(atS)),
		target: s.Target,
		action: action,
		apply: func() {
			for _, l := range links {
				if kind == KindLoss {
					l.SetLossRate(rate)
				} else {
					l.SetCorruptRate(rate)
				}
			}
		},
	}
}

// seedLinks gives each link of a target its own deterministic variate
// source, derived from the engine seed and the target name, once.
func (e *Engine) seedLinks(target string, links []*netsim.Link) {
	for i, l := range links {
		key := fmt.Sprintf("%s/%d", target, i)
		if e.seeded[key] {
			continue
		}
		e.seeded[key] = true
		h := fnv.New64a()
		h.Write([]byte(key))
		src := rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
		l.SetRand(src.Float64)
	}
}

// Timeline returns the transitions applied so far, in firing order. Two
// runs of the same schedule and seed produce identical timelines.
func (e *Engine) Timeline() []Transition {
	return append([]Transition(nil), e.timeline...)
}
