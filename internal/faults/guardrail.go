package faults

import (
	"fmt"

	"dynaq/internal/core"
	"dynaq/internal/netsim"
	"dynaq/internal/units"
)

// Violation is one failed runtime invariant check, with enough context to
// reproduce it.
type Violation struct {
	At    units.Time
	Port  string
	Check string
	Err   error
}

// String renders the violation for logs and CLI output.
func (v Violation) String() string {
	return fmt.Sprintf("%v %s [%s]: %v", v.At, v.Port, v.Check, v.Err)
}

// thresholdState is satisfied by the DynaQ-family admission schemes
// (buffer.DynaQ, buffer.DynaQTofino), which expose their Algorithm-1 state.
type thresholdState interface {
	State() *core.State
}

// Guardrail audits DynaQ's accounting invariants on every port event while
// faults churn the network: Σ T_i == B and T_i ≥ 0 (Algorithm 1's conserved
// quantities), occupancy ≤ B, per-queue byte accounting, and shared-pool
// reservations. Violations are recorded as structured records instead of
// panicking, so an experiment under fault injection reports corruption
// rather than silently producing wrong numbers.
//
// Occupancy on a DynaQ port is allowed to transiently exceed B by the stale
// backlog Σ max(0, q_i − T_i): when Algorithm 1 slashes a victim's
// threshold below its standing queue, the already-buffered bytes drain at
// line rate rather than being evicted (§III-B), so a strict occupancy ≤ B
// check would flag the algorithm's documented behaviour. Every other scheme
// gets the strict check.
type Guardrail struct {
	max        int
	total      int64
	violations []Violation

	ports []guardedPort
}

type guardedPort struct {
	label string
	port  *netsim.Port
}

// NewGuardrail builds a guardrail retaining at most maxRecorded violations
// (further ones are counted but not stored).
func NewGuardrail(maxRecorded int) *Guardrail {
	if maxRecorded <= 0 {
		maxRecorded = 64
	}
	return &Guardrail{max: maxRecorded}
}

// Watch installs the guardrail on a port (chained after any existing hook),
// checking invariants on every subsequent port event.
func (g *Guardrail) Watch(label string, p *netsim.Port) {
	g.ports = append(g.ports, guardedPort{label: label, port: p})
	p.AddEventHook(func(ev netsim.PortEvent) { g.check(label, p, ev.At) })
}

func (g *Guardrail) check(label string, p *netsim.Port, at units.Time) {
	// Per-queue byte accounting: the queues must sum to the port total.
	var qsum units.ByteSize
	for i := 0; i < p.NumQueues(); i++ {
		q := p.QueueLen(i)
		if q < 0 {
			g.report(at, label, "queue-bytes", fmt.Errorf("queue %d length %d < 0", i, q))
		}
		qsum += q
	}
	if qsum != p.TotalLen() {
		g.report(at, label, "queue-bytes",
			fmt.Errorf("Σ queue lengths %d != port total %d", qsum, p.TotalLen()))
	}

	// Occupancy ≤ B, with the DynaQ stale-backlog allowance.
	limit := p.Buffer()
	ts, dynaq := p.Admission().(thresholdState)
	if dynaq {
		st := ts.State()
		for i := 0; i < p.NumQueues() && i < st.NumQueues(); i++ {
			if over := p.QueueLen(i) - st.Threshold(i); over > 0 {
				limit += over
			}
		}
	}
	if p.TotalLen() > limit {
		g.report(at, label, "occupancy",
			fmt.Errorf("occupancy %d exceeds buffer %d (allowed %d)", p.TotalLen(), p.Buffer(), limit))
	}

	// Algorithm 1's conserved quantities: Σ T_i == B, T_i ≥ 0.
	if dynaq {
		if err := ts.State().CheckInvariants(); err != nil {
			g.report(at, label, "thresholds", err)
		}
	}

	// Shared-memory accounting: the pool can never be over-reserved, and
	// this port's buffered bytes must be covered by reservations.
	if pool := p.Pool(); pool != nil {
		if pool.Used() > pool.Total() {
			g.report(at, label, "pool",
				fmt.Errorf("pool used %d exceeds total %d", pool.Used(), pool.Total()))
		}
		if p.TotalLen() > pool.Used() {
			g.report(at, label, "pool",
				fmt.Errorf("port holds %d bytes but pool has only %d reserved", p.TotalLen(), pool.Used()))
		}
	}
}

func (g *Guardrail) report(at units.Time, port, check string, err error) {
	g.total++
	if len(g.violations) < g.max {
		g.violations = append(g.violations, Violation{At: at, Port: port, Check: check, Err: err})
	}
}

// Recheck re-runs the invariant checks on every watched port at the current
// state (useful as a final sweep after a run completes).
func (g *Guardrail) Recheck(now units.Time) {
	for _, gp := range g.ports {
		g.check(gp.label, gp.port, now)
	}
}

// Total returns how many violations were detected (recorded or not).
func (g *Guardrail) Total() int64 { return g.total }

// Violations returns the recorded violations, oldest first.
func (g *Guardrail) Violations() []Violation {
	return append([]Violation(nil), g.violations...)
}

// Err summarizes the guardrail outcome: nil when no invariant was ever
// violated, otherwise an error naming the first violation and the count.
func (g *Guardrail) Err() error {
	if g.total == 0 {
		return nil
	}
	return fmt.Errorf("faults: %d invariant violation(s), first: %v", g.total, g.violations[0])
}
