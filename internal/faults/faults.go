// Package faults is the deterministic fault-injection subsystem: a scripted
// schedule of network failures (link down/up, flapping with seeded jitter,
// random packet loss, bit corruption, whole-switch failure via link groups)
// driven by the discrete-event engine, plus a runtime invariant guardrail
// that audits DynaQ's accounting while faults churn the network.
//
// Everything is a deterministic function of the scenario seed: flap jitter
// is drawn from a seeded generator at schedule time, and each impaired link
// gets its own seeded variate stream, so the same scenario + seed always
// reproduces an identical fault timeline and identical experiment output.
//
// Topologies publish their links under stable names (see
// topology.Star.FaultRegistry and topology.LeafSpine.FaultRegistry); a
// schedule addresses links (or whole switches, via groups) by those names.
package faults

import (
	"fmt"
	"sort"

	"dynaq/internal/netsim"
	"dynaq/internal/units"
)

// Fault kinds accepted in a Spec.
const (
	// KindDown fails the target at at_s; with until_s set, it heals then.
	KindDown = "down"
	// KindUp heals the target at at_s.
	KindUp = "up"
	// KindFlap toggles the target down/up every half period between at_s
	// and until_s, each transition jittered by a seeded ±jitter_s draw; the
	// target is healed at until_s.
	KindFlap = "flap"
	// KindLoss sets random packet loss with probability rate on the target
	// at at_s; with until_s set, the loss clears then.
	KindLoss = "loss"
	// KindCorrupt sets bit-corruption with probability rate on the target
	// at at_s; with until_s set, the corruption clears then.
	KindCorrupt = "corrupt"
)

// Spec is one scripted fault, the JSON form consumed by scenario documents
// ("faults": [...]) and the dynaqsim -faults flag. Target names a link or a
// link group (a whole switch) in the topology's fault registry.
type Spec struct {
	Kind    string  `json:"kind"`               // down | up | flap | loss | corrupt
	Target  string  `json:"target"`             // link or switch-group name
	AtS     float64 `json:"at_s"`               // activation time, seconds
	UntilS  float64 `json:"until_s,omitempty"`  // deactivation time (flap end, auto-heal)
	PeriodS float64 `json:"period_s,omitempty"` // flap: full down+up cycle
	JitterS float64 `json:"jitter_s,omitempty"` // flap: ± jitter per transition (seeded)
	Rate    float64 `json:"rate,omitempty"`     // loss|corrupt probability, [0,1)
}

// Validate checks the spec's internal consistency (target existence is
// checked separately, against a registry, when the schedule is applied).
func (s Spec) Validate() error {
	if s.Target == "" {
		return fmt.Errorf("faults: %s spec needs a target", s.Kind)
	}
	if s.AtS < 0 {
		return fmt.Errorf("faults: %s %q: at_s %v must be non-negative", s.Kind, s.Target, s.AtS)
	}
	switch s.Kind {
	case KindDown, KindUp:
		//dynaqlint:allow float-eq until_s == 0 is the JSON-absent sentinel; the value is decoded, never computed
		if s.UntilS != 0 && s.UntilS <= s.AtS {
			return fmt.Errorf("faults: %s %q: until_s %v must follow at_s %v", s.Kind, s.Target, s.UntilS, s.AtS)
		}
	case KindFlap:
		if s.UntilS <= s.AtS {
			return fmt.Errorf("faults: flap %q: until_s %v must follow at_s %v", s.Target, s.UntilS, s.AtS)
		}
		if s.PeriodS <= 0 {
			return fmt.Errorf("faults: flap %q: period_s %v must be positive", s.Target, s.PeriodS)
		}
		if s.JitterS < 0 || s.JitterS >= s.PeriodS/2 {
			return fmt.Errorf("faults: flap %q: jitter_s %v must be in [0, period_s/2)", s.Target, s.JitterS)
		}
	case KindLoss, KindCorrupt:
		if s.Rate <= 0 || s.Rate >= 1 {
			return fmt.Errorf("faults: %s %q: rate %v must be in (0,1)", s.Kind, s.Target, s.Rate)
		}
		//dynaqlint:allow float-eq until_s == 0 is the JSON-absent sentinel; the value is decoded, never computed
		if s.UntilS != 0 && s.UntilS <= s.AtS {
			return fmt.Errorf("faults: %s %q: until_s %v must follow at_s %v", s.Kind, s.Target, s.UntilS, s.AtS)
		}
	default:
		return fmt.Errorf("faults: unknown kind %q (want down, up, flap, loss, or corrupt)", s.Kind)
	}
	return nil
}

// Validate checks a whole schedule.
func Validate(specs []Spec) error {
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	return nil
}

// Registry maps stable names to the links of an assembled topology, plus
// named groups (every link incident to one switch) so a single spec can fail
// a whole switch. Registration happens at topology-build time; duplicate or
// dangling names are programmer errors and panic.
type Registry struct {
	links  map[string]*netsim.Link
	groups map[string][]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		links:  make(map[string]*netsim.Link),
		groups: make(map[string][]string),
	}
}

// AddLink registers a link under a unique name.
func (r *Registry) AddLink(name string, l *netsim.Link) {
	if l == nil {
		panic(fmt.Sprintf("faults: registering nil link %q", name))
	}
	if _, dup := r.links[name]; dup {
		panic(fmt.Sprintf("faults: duplicate link name %q", name))
	}
	r.links[name] = l
}

// AddGroup registers a named group over already-registered links. A group
// name may not collide with a link name: targets resolve unambiguously.
func (r *Registry) AddGroup(group string, linkNames ...string) {
	if _, dup := r.groups[group]; dup {
		panic(fmt.Sprintf("faults: duplicate group name %q", group))
	}
	if _, clash := r.links[group]; clash {
		panic(fmt.Sprintf("faults: group name %q collides with a link name", group))
	}
	for _, n := range linkNames {
		if _, ok := r.links[n]; !ok {
			panic(fmt.Sprintf("faults: group %q references unknown link %q", group, n))
		}
	}
	r.groups[group] = append([]string(nil), linkNames...)
}

// Resolve returns the links a target names: one link, or a group's links.
func (r *Registry) Resolve(target string) ([]*netsim.Link, error) {
	if l, ok := r.links[target]; ok {
		return []*netsim.Link{l}, nil
	}
	if names, ok := r.groups[target]; ok {
		ls := make([]*netsim.Link, len(names))
		for i, n := range names {
			ls[i] = r.links[n]
		}
		return ls, nil
	}
	return nil, fmt.Errorf("faults: unknown target %q (known: %v)", target, r.Names())
}

// Totals sums the loss and corruption counters across every registered
// link, for experiment summaries ("how many packets did the faults eat").
func (r *Registry) Totals() (lost, corrupted int64) {
	// Iterate in sorted-name order: the sum is commutative, but walking the
	// map directly would (correctly) look order-dependent to the
	// determinism-taint analyzer, and deterministic order costs nothing here.
	for _, n := range r.LinkNames() {
		l := r.links[n]
		lost += l.Lost()
		corrupted += l.Corrupted()
	}
	return lost, corrupted
}

// LinkNames returns every registered link name, sorted, so registry
// listings are deterministic regardless of map iteration order.
func (r *Registry) LinkNames() []string {
	out := make([]string, 0, len(r.links))
	for n := range r.links {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GroupNames returns every registered group name, sorted.
func (r *Registry) GroupNames() []string {
	out := make([]string, 0, len(r.groups))
	for n := range r.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Names returns every registered link and group name, sorted, for error
// messages and CLI discovery.
func (r *Registry) Names() []string {
	out := append(r.LinkNames(), r.GroupNames()...)
	sort.Strings(out)
	return out
}

// Transition is one applied fault action, recorded as it fires so replay
// tests can compare timelines byte for byte.
type Transition struct {
	At     units.Time
	Target string
	Action string
}

// String renders the transition for logs and CLI output.
func (t Transition) String() string {
	return fmt.Sprintf("%-14v %-18s %s", t.At, t.Target, t.Action)
}
