package faults_test

import (
	"strings"
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/faults"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func newGuardedPort(t *testing.T, s *sim.Simulator, queues int, adm buffer.Admission) (*netsim.Port, *faults.Guardrail) {
	t.Helper()
	p, err := netsim.NewPort(s, netsim.PortConfig{
		Rate:      units.Gbps,
		Buffer:    30 * units.KB,
		Queues:    queues,
		Scheduler: sched.EqualDRR(queues, 1500),
		Admission: adm,
		Link:      netsim.NewLink(s, 10*units.Microsecond, &countNode{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := faults.NewGuardrail(8)
	g.Watch("port", p)
	return p, g
}

func TestGuardrailCleanDynaQRun(t *testing.T) {
	s := sim.New()
	adm, err := buffer.NewDynaQ(30*units.KB, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p, g := newGuardedPort(t, s, 4, adm)

	// Overload all four queues so DynaQ's threshold churn is exercised,
	// with the link flapping under the traffic.
	for i := 0; i < 200; i++ {
		i := i
		s.At(units.Time(i)*units.Time(2*units.Microsecond), func() {
			p.Enqueue(&packet.Packet{Flow: packet.FlowID(i % 4), Class: i % 4, Size: 1500})
		})
	}
	link := p.Link()
	s.At(units.Time(100*units.Microsecond), func() { link.SetDown(true) })
	s.At(units.Time(250*units.Microsecond), func() { link.SetDown(false) })
	s.Run()
	g.Recheck(s.Now())

	if err := g.Err(); err != nil {
		t.Fatalf("clean DynaQ run violated invariants: %v", err)
	}
	if st := p.Stats(); st.Enqueued == 0 || st.LinkLost == 0 {
		t.Fatalf("test exercised nothing: %+v", st)
	}
}

// admitAll deliberately ignores the buffer bound so the guardrail's
// occupancy check has something to catch.
type admitAll struct{}

func (admitAll) Name() string                                { return "AdmitAll" }
func (admitAll) Admit(buffer.View, int, units.ByteSize) bool { return true }

func TestGuardrailFlagsOverfilledBuffer(t *testing.T) {
	s := sim.New()
	p, g := newGuardedPort(t, s, 2, admitAll{})

	// 40 × 1500B = 60KB into a 30KB buffer, faster than 1Gbps can drain.
	for i := 0; i < 40; i++ {
		p.Enqueue(&packet.Packet{Flow: 1, Class: i % 2, Size: 1500})
	}

	if g.Total() == 0 {
		t.Fatal("overfilled buffer produced no violations")
	}
	vs := g.Violations()
	if len(vs) > 8 {
		t.Fatalf("recorded %d violations, cap is 8", len(vs))
	}
	if int64(len(vs)) > g.Total() {
		t.Fatalf("recorded %d > total %d", len(vs), g.Total())
	}
	if vs[0].Check != "occupancy" || vs[0].Port != "port" {
		t.Fatalf("first violation = %+v", vs[0])
	}
	if err := g.Err(); err == nil || !strings.Contains(err.Error(), "occupancy") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestGuardrailAllowsDynaQTransientOvershoot(t *testing.T) {
	// A DynaQ victim queue whose threshold is slashed below its standing
	// backlog drains rather than evicts, so occupancy may transiently
	// exceed B. The guardrail must not flag that documented behaviour:
	// run a skewed overload (one queue fills before competitors arrive)
	// and require zero violations.
	s := sim.New()
	adm, err := buffer.NewDynaQ(30*units.KB, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p, g := newGuardedPort(t, s, 2, adm)

	for i := 0; i < 30; i++ {
		p.Enqueue(&packet.Packet{Flow: 1, Class: 0, Size: 1500})
	}
	for i := 0; i < 30; i++ {
		i := i
		s.At(units.Time(i)*units.Time(1*units.Microsecond), func() {
			p.Enqueue(&packet.Packet{Flow: 2, Class: 1, Size: 1500})
		})
	}
	s.Run()
	g.Recheck(s.Now())

	if err := g.Err(); err != nil {
		t.Fatalf("DynaQ transient overshoot was flagged: %v", err)
	}
}
