package faults_test

import (
	"reflect"
	"testing"

	"dynaq/internal/faults"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// countNode counts deliveries.
type countNode struct{ received int }

func (n *countNode) Receive(*packet.Packet) { n.received++ }

func TestSpecValidate(t *testing.T) {
	valid := []faults.Spec{
		{Kind: "down", Target: "a", AtS: 0.1},
		{Kind: "down", Target: "a", AtS: 0.1, UntilS: 0.2},
		{Kind: "up", Target: "a", AtS: 0},
		{Kind: "flap", Target: "a", AtS: 0.1, UntilS: 0.5, PeriodS: 0.1},
		{Kind: "flap", Target: "a", AtS: 0.1, UntilS: 0.5, PeriodS: 0.1, JitterS: 0.02},
		{Kind: "loss", Target: "a", AtS: 0, Rate: 0.01},
		{Kind: "corrupt", Target: "a", AtS: 0, UntilS: 1, Rate: 0.5},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %d rejected: %v", i, err)
		}
	}
	invalid := []faults.Spec{
		{Kind: "down", AtS: 0.1},                                                        // no target
		{Kind: "meteor", Target: "a", AtS: 0.1},                                         // unknown kind
		{Kind: "down", Target: "a", AtS: -1},                                            // negative time
		{Kind: "down", Target: "a", AtS: 0.2, UntilS: 0.1},                              // until before at
		{Kind: "flap", Target: "a", AtS: 0.1, UntilS: 0.1, PeriodS: 0.1},                // empty window
		{Kind: "flap", Target: "a", AtS: 0.1, UntilS: 0.5},                              // no period
		{Kind: "flap", Target: "a", AtS: 0.1, UntilS: 0.5, PeriodS: 0.1, JitterS: 0.05}, // jitter ≥ period/2
		{Kind: "loss", Target: "a", AtS: 0},                                             // no rate
		{Kind: "loss", Target: "a", AtS: 0, Rate: 1},                                    // rate = 1
		{Kind: "corrupt", Target: "a", AtS: 0, Rate: -0.1},                              // negative rate
	}
	for i, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %d accepted: %+v", i, s)
		}
	}
}

func TestRegistryResolve(t *testing.T) {
	s := sim.New()
	reg := faults.NewRegistry()
	la := netsim.NewLink(s, 0, &countNode{})
	lb := netsim.NewLink(s, 0, &countNode{})
	reg.AddLink("a", la)
	reg.AddLink("b", lb)
	reg.AddGroup("sw", "a", "b")

	if got, err := reg.Resolve("a"); err != nil || len(got) != 1 || got[0] != la {
		t.Fatalf("Resolve(a) = %v, %v", got, err)
	}
	if got, err := reg.Resolve("sw"); err != nil || len(got) != 2 {
		t.Fatalf("Resolve(sw) = %v, %v", got, err)
	}
	if _, err := reg.Resolve("nope"); err == nil {
		t.Fatal("Resolve of unknown target succeeded")
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"a", "b", "sw"}) {
		t.Fatalf("Names() = %v", got)
	}

	for name, fn := range map[string]func(){
		"duplicate link":  func() { reg.AddLink("a", lb) },
		"duplicate group": func() { reg.AddGroup("sw") },
		"group over link": func() { reg.AddGroup("a", "b") },
		"dangling member": func() { reg.AddGroup("g2", "missing") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// buildEngine wires two links and a group and schedules the given specs.
func buildEngine(t *testing.T, seed int64, specs []faults.Spec) (*sim.Simulator, *faults.Engine, []*netsim.Link) {
	t.Helper()
	s := sim.New()
	reg := faults.NewRegistry()
	la := netsim.NewLink(s, 10*units.Microsecond, &countNode{})
	lb := netsim.NewLink(s, 10*units.Microsecond, &countNode{})
	reg.AddLink("a", la)
	reg.AddLink("b", lb)
	reg.AddGroup("sw", "a", "b")
	e := faults.NewEngine(s, reg, seed)
	if err := e.Schedule(specs); err != nil {
		t.Fatal(err)
	}
	return s, e, []*netsim.Link{la, lb}
}

func TestEngineDownUpAndGroup(t *testing.T) {
	specs := []faults.Spec{
		{Kind: "down", Target: "a", AtS: 0.001, UntilS: 0.003},
		{Kind: "down", Target: "sw", AtS: 0.005},
		{Kind: "up", Target: "sw", AtS: 0.006},
	}
	s, e, links := buildEngine(t, 1, specs)

	type probe struct {
		atS  float64
		want [2]bool // down state of a, b
	}
	probes := []probe{
		{0.0005, [2]bool{false, false}},
		{0.002, [2]bool{true, false}},
		{0.004, [2]bool{false, false}},
		{0.0055, [2]bool{true, true}},
		{0.007, [2]bool{false, false}},
	}
	for _, pr := range probes {
		pr := pr
		s.At(units.Time(0).Add(units.Seconds(pr.atS)), func() {
			for i, l := range links {
				if l.Down() != pr.want[i] {
					t.Errorf("t=%vs link %d down=%v, want %v", pr.atS, i, l.Down(), pr.want[i])
				}
			}
		})
	}
	s.Run()

	tl := e.Timeline()
	if len(tl) != 4 {
		t.Fatalf("timeline has %d transitions, want 4: %v", len(tl), tl)
	}
	if tl[0].Target != "a" || tl[0].Action != "down" || tl[0].At != units.Time(units.Millisecond) {
		t.Fatalf("first transition = %+v", tl[0])
	}
}

func TestEngineLossIsDeterministic(t *testing.T) {
	run := func(seed int64) (int64, []faults.Transition) {
		specs := []faults.Spec{{Kind: "loss", Target: "a", AtS: 0, Rate: 0.3, UntilS: 0.002}}
		s, e, links := buildEngine(t, seed, specs)
		for i := 0; i < 500; i++ {
			pkt := &packet.Packet{Flow: 1, Size: 1500}
			s.At(units.Time(i)*units.Time(5*units.Microsecond), func() { links[0].Send(pkt) })
		}
		s.Run()
		return links[0].Lost(), e.Timeline()
	}

	lost1, tl1 := run(42)
	lost2, tl2 := run(42)
	if lost1 != lost2 {
		t.Fatalf("same seed lost %d vs %d packets", lost1, lost2)
	}
	if !reflect.DeepEqual(tl1, tl2) {
		t.Fatalf("same seed produced different timelines:\n%v\n%v", tl1, tl2)
	}
	if lost1 == 0 || lost1 == 500 {
		t.Fatalf("loss rate 0.3 lost %d of 500 packets", lost1)
	}
	// The loss window closes at 2ms: the tail of the probes (≥ 2ms) must
	// all be delivered.
	if tl1[len(tl1)-1].Action != "loss=0" {
		t.Fatalf("last transition = %+v, want loss=0", tl1[len(tl1)-1])
	}

	lost3, _ := run(43)
	if lost3 == lost1 {
		t.Logf("note: seeds 42 and 43 lost the same count (%d); not necessarily a bug", lost1)
	}
}

func TestEngineFlapTimelineReplay(t *testing.T) {
	specs := []faults.Spec{
		{Kind: "flap", Target: "a", AtS: 0.001, UntilS: 0.01, PeriodS: 0.002, JitterS: 0.0004},
		{Kind: "corrupt", Target: "b", AtS: 0, Rate: 0.05},
	}
	run := func() []faults.Transition {
		s, e, _ := buildEngine(t, 7, specs)
		s.Run()
		return e.Timeline()
	}
	tl1 := run()
	tl2 := run()
	if !reflect.DeepEqual(tl1, tl2) {
		t.Fatalf("flap replay diverged:\n%v\n%v", tl1, tl2)
	}
	if len(tl1) < 5 {
		t.Fatalf("flap produced only %d transitions: %v", len(tl1), tl1)
	}
	// The window must end healed.
	last := tl1[len(tl1)-1]
	if last.Action != "up" || last.At != units.Time(10*units.Millisecond) {
		t.Fatalf("flap did not heal at until_s: %+v", last)
	}
	// A different seed must shift the jittered toggles.
	s2, e2, _ := func() (*sim.Simulator, *faults.Engine, []*netsim.Link) {
		return buildEngine(t, 8, specs)
	}()
	s2.Run()
	if reflect.DeepEqual(tl1, e2.Timeline()) {
		t.Fatal("different seeds produced identical jittered flap timelines")
	}
}

func TestEngineRejectsBadSchedule(t *testing.T) {
	s := sim.New()
	reg := faults.NewRegistry()
	reg.AddLink("a", netsim.NewLink(s, 0, &countNode{}))
	e := faults.NewEngine(s, reg, 1)

	if err := e.Schedule([]faults.Spec{{Kind: "down", Target: "ghost", AtS: 0}}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := e.Schedule([]faults.Spec{{Kind: "meteor", Target: "a", AtS: 0}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if s.Pending() != 0 {
		t.Fatalf("failed Schedule armed %d events", s.Pending())
	}
}
