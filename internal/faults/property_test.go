package faults_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynaq/internal/buffer"
	"dynaq/internal/faults"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// TestDynaQInvariantsUnderFaults property-checks Algorithm 1's conserved
// quantities (Σ T_i == B, T_i ≥ 0) and the port/pool accounting under
// fault-injected runs: a flapping link plus random loss under randomized
// overload, the regime the clean-traffic property tests never reach.
func TestDynaQInvariantsUnderFaults(t *testing.T) {
	prop := func(seed int64, wRaw [4]uint8, burstRaw uint16) bool {
		weights := make([]int64, 4)
		for i, w := range wRaw {
			weights[i] = int64(w%8) + 1
		}
		bursts := int(burstRaw%300) + 50

		s := sim.New()
		const buf = 40 * units.KB
		adm, err := buffer.NewDynaQ(buf, weights)
		if err != nil {
			t.Fatal(err)
		}
		wrr, err := sched.NewWRR(weights)
		if err != nil {
			t.Fatal(err)
		}
		link := netsim.NewLink(s, 10*units.Microsecond, &countNode{})
		p, err := netsim.NewPort(s, netsim.PortConfig{
			Rate:      units.Gbps,
			Buffer:    buf,
			Queues:    4,
			Scheduler: wrr,
			Admission: adm,
			Link:      link,
		})
		if err != nil {
			t.Fatal(err)
		}

		reg := faults.NewRegistry()
		reg.AddLink("uplink", link)
		eng := faults.NewEngine(s, reg, seed)
		if err := eng.Schedule([]faults.Spec{
			{Kind: "flap", Target: "uplink", AtS: 0.0001, UntilS: 0.002, PeriodS: 0.0004, JitterS: 0.00005},
			{Kind: "loss", Target: "uplink", AtS: 0, Rate: 0.05},
		}); err != nil {
			t.Fatal(err)
		}

		g := faults.NewGuardrail(16)
		g.Watch("dut", p)

		arrivals := rand.New(rand.NewSource(seed))
		for i := 0; i < bursts; i++ {
			at := units.Time(arrivals.Int63n(int64(2 * units.Millisecond)))
			cls := arrivals.Intn(4)
			size := units.ByteSize(64 + arrivals.Int63n(1437))
			s.At(at, func() {
				p.Enqueue(&packet.Packet{Flow: packet.FlowID(cls), Class: cls, Size: size})
			})
		}
		s.Run()
		g.Recheck(s.Now())

		if err := g.Err(); err != nil {
			t.Logf("seed %d weights %v: %v", seed, weights, err)
			return false
		}
		if err := adm.State().CheckInvariants(); err != nil {
			t.Logf("seed %d weights %v: final state: %v", seed, weights, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
