package faults_test

import (
	"reflect"
	"testing"

	"dynaq/internal/faults"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

type dropNode struct{}

func (dropNode) Receive(*packet.Packet) {}

// scrambledRegistry registers links and groups in a deliberately unsorted
// order, so any map-iteration-order leak in the accessors shows up.
func scrambledRegistry() *faults.Registry {
	s := sim.New()
	r := faults.NewRegistry()
	for _, name := range []string{"spine1-leaf0", "leaf0-spine1", "host3-leaf1", "leaf1-host3", "aaa", "zzz"} {
		r.AddLink(name, netsim.NewLink(s, units.Microsecond, dropNode{}))
	}
	r.AddGroup("switch-leaf0", "spine1-leaf0", "leaf0-spine1")
	r.AddGroup("switch-aaa", "aaa")
	return r
}

func TestRegistryListingsDeterministic(t *testing.T) {
	r := scrambledRegistry()

	wantLinks := []string{"aaa", "host3-leaf1", "leaf0-spine1", "leaf1-host3", "spine1-leaf0", "zzz"}
	wantGroups := []string{"switch-aaa", "switch-leaf0"}
	wantAll := []string{"aaa", "host3-leaf1", "leaf0-spine1", "leaf1-host3", "spine1-leaf0", "switch-aaa", "switch-leaf0", "zzz"}

	// Map iteration order varies between calls within one process too:
	// every call must agree with the sorted form, not just the first.
	for i := 0; i < 50; i++ {
		if got := r.LinkNames(); !reflect.DeepEqual(got, wantLinks) {
			t.Fatalf("call %d: LinkNames() = %v, want %v", i, got, wantLinks)
		}
		if got := r.GroupNames(); !reflect.DeepEqual(got, wantGroups) {
			t.Fatalf("call %d: GroupNames() = %v, want %v", i, got, wantGroups)
		}
		if got := r.Names(); !reflect.DeepEqual(got, wantAll) {
			t.Fatalf("call %d: Names() = %v, want %v", i, got, wantAll)
		}
	}
}
