module dynaq

go 1.22
