// Command dynaqsim runs a single static-flow scenario on a simulated rack
// and prints the per-queue throughput series plus a summary — the
// interactive counterpart of cmd/experiments.
//
// Examples:
//
//	dynaqsim -scheme DynaQ -spec 1:2,2:16
//	dynaqsim -scheme BestEffort -sched drr -rate 10 -buffer 192000 \
//	    -queues 8 -spec 0:2,1:4,2:8 -duration 5
//	dynaqsim -scheme PQL -weights 4,3,2,1 -spec 0:16,1:8,2:4,3:2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dynaq"
	"dynaq/internal/experiment"
	"dynaq/internal/faults"
	"dynaq/internal/metrics"
	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
	"dynaq/internal/trace"
	"dynaq/internal/units"
)

func main() {
	var (
		scheme   = flag.String("scheme", "DynaQ", "BestEffort | PQL | DynaQ | TCN | PMSB | PerQueueECN | MQ-ECN | TCNDrop")
		schedK   = flag.String("sched", "drr", "drr | wrr | spq+drr")
		rateG    = flag.Float64("rate", 1, "link rate in Gbps")
		bufB     = flag.Int64("buffer", 85000, "port buffer in bytes")
		queues   = flag.Int("queues", 4, "service queues per port")
		weights  = flag.String("weights", "", "comma-separated queue weights (default equal)")
		spec     = flag.String("spec", "1:2,2:16", "traffic: class:flows[,class:flows...]")
		duration = flag.Float64("duration", 10, "simulated seconds")
		rttUS    = flag.Float64("rtt", 500, "base RTT in microseconds")
		mtu      = flag.Int64("mtu", 1500, "frame size in bytes")
		sample   = flag.Float64("sample", 0.5, "throughput sampling interval in seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		seedsN   = flag.Int("seeds", 1, "repeat the scenario across N derived seeds and report mean ± std of the aggregate throughput")
		parallel = flag.Int("parallel", 0, "worker goroutines for -seeds > 1 (0 = GOMAXPROCS, 1 = sequential); the stats are identical at any setting")
		traceN   = flag.Int("trace", 0, "dump the last N drop/mark/evict events at the bottleneck")
		faultsF  = flag.String("faults", "", "JSON file with a fault schedule (array of fault specs; targets tor:<i>, host<i>:nic, group tor)")
		guard    = flag.Bool("guard", false, "arm the invariant guardrail on every switch port")
		config   = flag.String("config", "", "run a JSON scenario file instead of flags (see internal/scenario)")
		engineF  = flag.String("engine", "", "override the scenario's simulation engine: packet | flow | hybrid (-config fct scenarios only)")
		teleDir  = flag.String("telemetry", "", "write run artifacts (manifest, metrics, events) into this directory")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		progress = flag.Bool("progress", false, "print wall-clock progress heartbeats to stderr")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dynaqsim", dynaq.Version)
		return
	}

	stopProf, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	if *config != "" {
		runConfig(*config, *engineF, *teleDir, *progress)
		return
	}
	if *engineF != "" {
		fatalf("-engine selects an fct scenario's fidelity; it needs -config")
	}

	ws := make([]int64, *queues)
	for i := range ws {
		ws[i] = 1
	}
	if *weights != "" {
		parts := strings.Split(*weights, ",")
		if len(parts) != *queues {
			fatalf("-weights needs %d entries", *queues)
		}
		for i, p := range parts {
			w, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil || w <= 0 {
				fatalf("bad weight %q", p)
			}
			ws[i] = w
		}
	}

	var specs []experiment.QueueSpec
	for _, part := range strings.Split(*spec, ",") {
		cf := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(cf) != 2 {
			fatalf("bad -spec entry %q (want class:flows)", part)
		}
		class, err1 := strconv.Atoi(cf[0])
		flows, err2 := strconv.Atoi(cf[1])
		if err1 != nil || err2 != nil || class < 0 || class >= *queues || flows <= 0 {
			fatalf("bad -spec entry %q", part)
		}
		specs = append(specs, experiment.QueueSpec{Class: class, Flows: flows})
	}

	cfg := experiment.StaticConfig{
		Scheme:      experiment.Scheme(*scheme),
		Sched:       experiment.SchedKind(*schedK),
		Params:      experiment.SchemeParams{Weights: ws},
		Rate:        units.Rate(*rateG * 1e9),
		Delay:       units.Seconds(*rttUS / 4 * 1e-6),
		Buffer:      units.ByteSize(*bufB),
		Queues:      *queues,
		MTU:         units.ByteSize(*mtu),
		Specs:       specs,
		Duration:    units.Seconds(*duration),
		SampleEvery: units.Seconds(*sample),
		Seed:        *seed,
	}
	cfg.TraceEvents = *traceN
	cfg.Guard = *guard
	if *faultsF != "" {
		data, err := os.ReadFile(*faultsF)
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(data, &cfg.Faults); err != nil {
			fatalf("-faults %s: %v", *faultsF, err)
		}
		if err := faults.Validate(cfg.Faults); err != nil {
			fatalf("-faults %s: %v", *faultsF, err)
		}
	}
	if *seedsN > 1 {
		// Multi-seed mode aggregates across runs; single-stream sinks make
		// no sense there.
		if *teleDir != "" {
			fatalf("-seeds > 1 runs many simulations; -telemetry writes a single run's artifacts (drop one of them)")
		}
		if *progress {
			fatalf("-seeds > 1 interleaves runs; drop -progress")
		}
		runMultiSeed(*seedsN, *parallel, cfg)
		return
	}
	var run *telemetry.Run
	if *teleDir != "" {
		// Flag mode has no scenario file to hash, so the manifest hashes a
		// canonical rendering of every behavior-affecting flag instead.
		canonical := fmt.Sprintf(
			"scheme=%s sched=%s rate=%v buffer=%d queues=%d weights=%s spec=%s duration=%v rtt=%v mtu=%d sample=%v seed=%d trace=%d faults=%s guard=%v",
			*scheme, *schedK, *rateG, *bufB, *queues, *weights, *spec,
			*duration, *rttUS, *mtu, *sample, *seed, *traceN, *faultsF, *guard)
		var err error
		run, err = telemetry.NewRun(*teleDir, telemetry.Manifest{
			Tool:         "dynaqsim",
			Version:      dynaq.Version,
			ScenarioHash: telemetry.Hash([]byte(canonical)),
			Seed:         *seed,
			Scheme:       *scheme,
			Args:         os.Args[1:],
		})
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Telemetry = run
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	res, err := experiment.RunStatic(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("scheme=%s sched=%s rate=%v buffer=%v queues=%d rtt=%vus\n\n",
		*scheme, *schedK, cfg.Rate, cfg.Buffer, *queues, *rttUS)
	fmt.Printf("%-10s", "time")
	for q := 0; q < *queues; q++ {
		fmt.Printf("  q%d(Mbps)", q)
	}
	fmt.Printf("  aggregate\n")
	for _, s := range res.Samples {
		fmt.Printf("%-10s", s.At.String())
		for _, r := range s.PerQueue {
			fmt.Printf("  %8.1f", float64(r)/1e6)
		}
		fmt.Printf("  %8.1f\n", float64(s.Aggregate)/1e6)
	}
	end := units.Time(cfg.Duration)
	warm := end / 5
	fmt.Printf("\nsummary (after warmup):\n")
	for q := 0; q < *queues; q++ {
		fmt.Printf("  queue %d: %8.1f Mbps  share %.3f\n", q,
			float64(res.AvgThroughput(q, warm, end))/1e6, res.ShareOf(q, warm, end))
	}
	fmt.Printf("  aggregate: %.1f Mbps, drops at bottleneck: %d\n",
		float64(res.AvgAggregate(warm, end))/1e6, res.Drops)
	if res.Trace != nil {
		fmt.Printf("\nbottleneck events: %s\n", res.Trace.Summary())
		if err := res.Trace.Dump(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
	if len(res.FaultTimeline) > 0 {
		fmt.Printf("\nfault timeline (%d transitions, %d lost, %d corrupted on links):\n",
			len(res.FaultTimeline), res.LinkLost, res.LinkCorrupted)
		for _, tr := range res.FaultTimeline {
			fmt.Printf("  %s\n", tr)
		}
	}
	if *guard {
		printViolations(res.ViolationTotal, res.Violations)
	}
	if run != nil {
		run.Summarize("drops", strconv.FormatInt(res.Drops, 10))
		run.Summarize("samples", strconv.Itoa(len(res.Samples)))
		run.Summarize("aggregate_mbps", fmt.Sprintf("%.1f", float64(res.AvgAggregate(warm, end))/1e6))
		if res.Trace != nil {
			if err := writeTrace(run.Dir(), res.Trace); err != nil {
				fatalf("%v", err)
			}
		}
		if err := run.Close(); err != nil {
			fatalf("%v", err)
		}
	}
}

// runMultiSeed repeats the flag-built scenario across n derived seeds on a
// worker pool and prints the aggregate-throughput statistics. Each seed runs
// a fully independent simulation, so the reported stats are identical at any
// -parallel setting.
func runMultiSeed(n, parallel int, cfg experiment.StaticConfig) {
	end := units.Time(cfg.Duration)
	warm := end / 5
	st, err := experiment.RunSeeds(n, experiment.Options{Seed: cfg.Seed, Parallel: parallel},
		func(o experiment.Options) (float64, error) {
			c := cfg
			c.Seed = o.Seed
			res, err := experiment.RunStatic(c)
			if err != nil {
				return 0, err
			}
			return float64(res.AvgAggregate(warm, end)) / 1e6, nil
		})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("scheme=%s aggregate Mbps after warmup, %d seeds on %d workers:\n  %s\n",
		cfg.Scheme, n, experiment.Workers(parallel, n), st)
}

// writeTrace dumps the recorder's retained events as trace.jsonl inside the
// run's artifact directory.
func writeTrace(dir string, rec *trace.Recorder) error {
	f, err := os.Create(filepath.Join(dir, telemetry.TraceFile))
	if err != nil {
		return err
	}
	if err := rec.DumpJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printViolations reports the guardrail outcome: silence is not a pass, so
// the clean case is stated explicitly.
func printViolations(total int64, recorded []faults.Violation) {
	if total == 0 {
		fmt.Printf("\nguardrail: no invariant violations\n")
		return
	}
	fmt.Printf("\nguardrail: %d violations (showing %d):\n", total, len(recorded))
	for _, v := range recorded {
		fmt.Printf("  %s\n", v)
	}
}

// runConfig executes a JSON scenario document, optionally writing run
// artifacts (manifest hashed over the scenario file bytes) and progress.
// engine, when non-empty, overrides the document's simulation engine; since
// the scenario bytes (and so the hash) don't change, the override is carried
// by the manifest's engine field instead.
func runConfig(path, engine, teleDir string, progress bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	r, err := scenario.LoadWith(data, scenario.Overrides{Engine: engine})
	if err != nil {
		fatalf("%v", err)
	}
	var run *telemetry.Run
	if teleDir != "" {
		run, err = telemetry.NewRun(teleDir, telemetry.Manifest{
			Tool:         "dynaqsim",
			Version:      dynaq.Version,
			ScenarioHash: telemetry.Hash(data),
			Seed:         r.Seed(),
			Scheme:       r.Scheme(),
			Engine:       r.Engine(),
			Args:         os.Args[1:],
		})
		if err != nil {
			fatalf("%v", err)
		}
		r.SetTelemetry(run)
	}
	if progress {
		r.SetProgress(os.Stderr)
	}
	res, err := r.Run()
	if err != nil {
		fatalf("%v", err)
	}
	switch {
	case res.Static != nil:
		st := res.Static
		n := len(st.Samples)
		fmt.Printf("%s scenario (%s): %d throughput samples, %d drops\n",
			r.Kind(), st.Scheme, n, st.Drops)
		if n > 0 {
			last := st.Samples[n-1]
			fmt.Printf("final sample @ %v:", last.At)
			for q, rate := range last.PerQueue {
				fmt.Printf("  q%d=%.1fMbps", q, float64(rate)/1e6)
			}
			fmt.Printf("  aggregate=%.1fMbps\n", float64(last.Aggregate)/1e6)
		}
		reportFaults(r.Guarded(), len(st.FaultTimeline), st.LinkLost, st.LinkCorrupted, st.ViolationTotal, st.Violations)
	case res.Dynamic != nil:
		d := res.Dynamic
		fmt.Printf("%s scenario (%s, load %.0f%%, engine %s): %d/%d flows\n",
			r.Kind(), d.Scheme, d.Load*100, r.Engine(), d.Completed, d.Generated)
		if fl := d.Fluid; fl != nil {
			fmt.Printf("engine events %d  rate recomputes %d  demotions %d  promotions %d\n",
				d.Events, fl.Recomputes, fl.Demotions, fl.Promotions)
		}
		fmt.Printf("avg FCT overall %.2fms  small %.2fms  large %.2fms  p99 small %.2fms\n",
			d.FCT.Avg(metrics.AllFlows).Seconds()*1e3,
			d.FCT.Avg(metrics.SmallFlows).Seconds()*1e3,
			d.FCT.Avg(metrics.LargeFlows).Seconds()*1e3,
			d.FCT.Percentile(metrics.SmallFlows, 0.99).Seconds()*1e3)
		reportFaults(r.Guarded(), len(d.FaultTimeline), d.LinkLost, d.LinkCorrupted, d.ViolationTotal, d.Violations)
	}
	if run != nil {
		switch {
		case res.Static != nil:
			run.Summarize("drops", strconv.FormatInt(res.Static.Drops, 10))
			run.Summarize("samples", strconv.Itoa(len(res.Static.Samples)))
			if res.Static.Trace != nil {
				if err := writeTrace(run.Dir(), res.Static.Trace); err != nil {
					fatalf("%v", err)
				}
			}
		case res.Dynamic != nil:
			run.Summarize("flows_generated", strconv.Itoa(res.Dynamic.Generated))
			run.Summarize("flows_completed", strconv.Itoa(res.Dynamic.Completed))
			run.Summarize("avg_fct_us_overall",
				strconv.FormatInt(int64(res.Dynamic.FCT.Avg(metrics.AllFlows)/units.Microsecond), 10))
			if fl := res.Dynamic.Fluid; fl != nil {
				run.Summarize("events", strconv.FormatInt(res.Dynamic.Events, 10))
				run.Summarize("recomputes", strconv.FormatInt(fl.Recomputes, 10))
				run.Summarize("demotions", strconv.FormatInt(fl.Demotions, 10))
			}
		}
		if err := run.Close(); err != nil {
			fatalf("%v", err)
		}
	}
}

// reportFaults summarises a scenario run's fault activity and guardrail
// verdict (quiet when the scenario scheduled neither).
func reportFaults(guarded bool, transitions int, lost, corrupted, violationTotal int64, recorded []faults.Violation) {
	if transitions > 0 {
		fmt.Printf("faults: %d transitions, %d lost, %d corrupted on links\n",
			transitions, lost, corrupted)
	}
	if guarded {
		printViolations(violationTotal, recorded)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
