// Command benchjson runs the repo's benchmark suite and records the results
// as machine-readable JSON, so CI can archive per-commit performance numbers
// (ns/op, allocs/op, events/s, figure headline metrics) as build artifacts
// and regressions can be diffed instead of eyeballed.
//
// It shells out to `go test -run ^$ -bench <re> -benchtime <n>` on the
// requested packages, echoes the raw output to stderr for the build log, and
// parses every "Benchmark..." result line into one entry keyed by unit.
//
// Usage:
//
//	benchjson                          # all benchmarks, 1 iteration, BENCH_<date>.json
//	benchjson -bench Engine -benchtime 100x
//	benchjson -out perf.json -pkg ./internal/sim
//
// Exit status: 0 on success, 1 when `go test` fails or no benchmark lines
// were found (a silent empty artifact would read as "all benchmarks gone").
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynaq"
)

// Result is one benchmark line: the name as printed (including the -N
// GOMAXPROCS suffix), the iteration count, and every reported metric keyed
// by its unit (ns/op, B/op, allocs/op, events/s, figure metrics...).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level artifact schema.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Packages   []string `json:"packages"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	benchRE := flag.String("bench", ".", "regexp selecting benchmarks (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark time or iteration count (go test -benchtime)")
	out := flag.String("out", "", "output path (default BENCH_<utc-date>.json)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	var pkgs multiFlag
	flag.Var(&pkgs, "pkg", "package pattern to benchmark (repeatable; default ./...)")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchjson", dynaq.Version)
		return
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	// Wall-clock here stamps the artifact filename and metadata; nothing
	// simulated depends on it.
	date := time.Now().UTC().Format("2006-01-02") //dynaqlint:allow determinism artifact timestamp, not simulation state
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	args := append([]string{"test", "-run", "^$", "-bench", *benchRE, "-benchtime", *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	// Tee: CI logs see the familiar go test output, the parser sees a copy.
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	runErr := cmd.Run()
	os.Stderr.Write(buf.Bytes())
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), runErr)
		os.Exit(1)
	}

	results := parseBenchLines(buf.String())
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark result lines in go test output\n")
		os.Exit(1)
	}

	report := Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *benchRE,
		Benchtime:  *benchtime,
		Packages:   pkgs,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
}

// parseBenchLines extracts every benchmark result from go test output. The
// line format is fixed by the testing package:
//
//	BenchmarkName-8   1000   1234 ns/op   0 allocs/op   8.1e+06 events/s
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLines(output string) []Result {
	var results []Result
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) == 0 {
			continue
		}
		results = append(results, r)
	}
	return results
}

// multiFlag collects repeated -pkg values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
