// Command benchjson runs the repo's benchmark suite and records the results
// as machine-readable JSON, so CI can archive per-commit performance numbers
// (ns/op, allocs/op, events/s, figure headline metrics) as build artifacts
// and regressions can be diffed instead of eyeballed.
//
// It shells out to `go test -run ^$ -bench <re> -benchtime <n>` on the
// requested packages, echoes the raw output to stderr for the build log, and
// parses every "Benchmark..." result line into one entry keyed by unit.
//
// Usage:
//
//	benchjson                          # all benchmarks, 1 iteration, BENCH_<date>.json
//	benchjson -bench Engine -benchtime 100x
//	benchjson -out perf.json -pkg ./internal/sim
//	benchjson -out now.json -compare BENCH_baseline.json    # run, record, and gate
//	benchjson -check now.json -compare BENCH_baseline.json  # gate a prior report, no rerun
//	benchjson -check core.json -check flowsim.json -compare BENCH_baseline.json  # merge reports, one gate
//
// With -compare, the current report's throughput metrics (events/s, flows/s,
// recomputes/s, flowfills/s) are gated against the baseline report: any
// benchmark more than -tolerance (default 20%) below a baseline throughput —
// or present in the baseline but missing from the current run — fails the
// gate. -check loads a previously recorded report instead of rerunning the
// benchmarks, so CI can record once and gate as a separate step.
//
// Exit status: 0 on success, 1 when `go test` fails, no benchmark lines
// were found (a silent empty artifact would read as "all benchmarks gone"),
// or the -compare gate trips.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynaq"
)

// Result is one benchmark line: the name as printed (including the -N
// GOMAXPROCS suffix), the iteration count, and every reported metric keyed
// by its unit (ns/op, B/op, allocs/op, events/s, figure metrics...).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level artifact schema.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Packages   []string `json:"packages"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	benchRE := flag.String("bench", ".", "regexp selecting benchmarks (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark time or iteration count (go test -benchtime)")
	out := flag.String("out", "", "output path (default BENCH_<utc-date>.json)")
	var checks multiFlag
	flag.Var(&checks, "check", "previously recorded report to gate instead of running benchmarks (repeatable; reports are merged, use with -compare)")
	compare := flag.String("compare", "", "baseline report to gate events/s throughput against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional events/s drop below the -compare baseline")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	var pkgs multiFlag
	flag.Var(&pkgs, "pkg", "package pattern to benchmark (repeatable; default ./...)")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchjson", dynaq.Version)
		return
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	if len(checks) > 0 {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -check without -compare does nothing")
			os.Exit(1)
		}
		// Merge all -check reports: CI records core and flowsim benchmarks
		// in separate runs (they need very different -benchtime budgets)
		// but gates them against one baseline.
		var current Report
		for _, path := range checks {
			r, err := loadReport(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			current.Benchmarks = append(current.Benchmarks, r.Benchmarks...)
		}
		gate(*compare, current, *tolerance)
		return
	}

	// Wall-clock here stamps the artifact filename and metadata; nothing
	// simulated depends on it.
	date := time.Now().UTC().Format("2006-01-02") //dynaqlint:allow determinism artifact timestamp, not simulation state
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	args := append([]string{"test", "-run", "^$", "-bench", *benchRE, "-benchtime", *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	// Tee: CI logs see the familiar go test output, the parser sees a copy.
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	runErr := cmd.Run()
	os.Stderr.Write(buf.Bytes())
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), runErr)
		os.Exit(1)
	}

	results := parseBenchLines(buf.String())
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark result lines in go test output\n")
		os.Exit(1)
	}

	report := Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *benchRE,
		Benchtime:  *benchtime,
		Packages:   pkgs,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)

	if *compare != "" {
		gate(*compare, report, *tolerance)
	}
}

// loadReport reads one recorded benchmark report.
func loadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("parsing %s: %w", path, err)
	}
	return r, nil
}

// throughputUnits are the higher-is-better metrics the gate compares. Other
// units (ns/op, B/op) are recorded but not gated: wall-time noise on shared
// CI runners would make them flaky, while throughput over a fixed workload
// is stable enough to hold a 20% line.
var throughputUnits = []string{"events/s", "flows/s", "recomputes/s", "demotions/s", "flowfills/s"}

// gate compares the current report's throughput metrics against a baseline
// report and exits 1 on regression. Failures are loud and itemized; passing
// prints one line per gated metric so the log shows what was checked.
func gate(baselinePath string, current Report, tolerance float64) {
	baseline, err := loadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	curr := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		curr[r.Name] = r
	}
	gated, failed := 0, 0
	for _, b := range baseline.Benchmarks {
		for _, unit := range throughputUnits {
			base, ok := b.Metrics[unit]
			if !ok || base <= 0 {
				continue
			}
			gated++
			c, found := curr[b.Name]
			if !found {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: in baseline %s but missing from the current run\n", b.Name, baselinePath)
				failed++
				continue
			}
			got := c.Metrics[unit]
			floor := base * (1 - tolerance)
			if got < floor {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %.4g %s is %.1f%% below baseline %.4g (floor %.4g at %.0f%% tolerance)\n",
					b.Name, got, unit, 100*(1-got/base), base, floor, tolerance*100)
				failed++
				continue
			}
			fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %.4g %s vs baseline %.4g (%+.1f%%)\n",
				b.Name, got, unit, base, 100*(got/base-1))
		}
	}
	if gated == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL baseline %s has no throughput benchmarks to gate against\n", baselinePath)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d gated benchmark(s) regressed beyond %.0f%%\n", failed, gated, tolerance*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: throughput gate passed (%d benchmark(s), %.0f%% tolerance)\n", gated, tolerance*100)
}

// parseBenchLines extracts every benchmark result from go test output. The
// line format is fixed by the testing package:
//
//	BenchmarkName-8   1000   1234 ns/op   0 allocs/op   8.1e+06 events/s
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLines(output string) []Result {
	var results []Result
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) == 0 {
			continue
		}
		results = append(results, r)
	}
	return results
}

// multiFlag collects repeated -pkg values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
