// Command dynaqworker is one member of a dynaqd worker fleet. It pulls
// (scenario, scheme, seed) cells from the coordinator's lease API, runs them
// through the exact execution path the coordinator itself uses (so artifact
// bytes are identical no matter who computed them), renews its lease by
// heartbeat while a cell runs, and uploads the finished artifact directory
// for content-addressed absorption.
//
// The worker holds no durable state: kill -9 at any instant and the
// coordinator requeues the cell once the lease TTL lapses. A worker whose
// upload arrives after its lease expired still contributes — the artifact is
// absorbed by content address and the requeued attempt becomes a cache hit.
//
// Usage:
//
//	dynaqworker -coordinator http://dynaqd-host:8080 [-id name] [-work dir] [-poll 500ms]
//
// The worker's build version must match the coordinator's: grants at a
// different version are refused (the cache key embeds the version, so a
// mismatched binary could only produce wrong-keyed bytes).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dynaq"
	"dynaq/internal/fleet"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "dynaqd base URL to pull leases from")
		id          = flag.String("id", "", "worker identity shown in lease bookkeeping (default host-pid)")
		workDir     = flag.String("work", "", "scratch directory for in-progress cells (default a fresh temp dir)")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle wait between lease requests when the coordinator has no work")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("dynaqworker", dynaq.Version)
		return
	}

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = host + "-" + strconv.Itoa(os.Getpid())
	}
	logger := log.New(os.Stderr, "dynaqworker["+*id+"]: ", log.LstdFlags)
	if *workDir == "" {
		dir, err := os.MkdirTemp("", "dynaqworker-")
		if err != nil {
			logger.Fatal(err)
		}
		defer os.RemoveAll(dir)
		*workDir = dir
	}

	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: *coordinator,
		ID:          *id,
		Version:     dynaq.Version,
		WorkDir:     *workDir,
		Poll:        *poll,
		Log:         logger,
	})

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	logger.Printf("version %s pulling from %s (scratch %s)", dynaq.Version, *coordinator, *workDir)
	w.Run(ctx)
	logger.Printf("stopped: %d cell(s) completed, %d lease(s) lost", w.Cells, w.LostLeases)
}
