// Command dynaqtop is a live terminal view of a dynaqd coordinator: queue
// depth, per-worker lease occupancy, per-tenant queue pressure and
// queue-wait p99 (when the daemon serves more than the default tenant),
// cache and retry counters, rolling
// latency percentiles derived from the service histograms, and the tail of
// the most recent running job's event stream — all assembled from the same
// /metrics, /healthz, /v1/jobs, and /v1/jobs/{id}/events endpoints any other
// client sees, so pointing it at a production daemon is read-only and safe.
//
// Usage:
//
//	dynaqtop -coordinator http://127.0.0.1:8080 [-interval 2s] [-once]
//
// -once renders a single frame without ANSI clearing and exits — the mode CI
// and scripts use.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dynaq"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8080", "dynaqd base URL")
		interval    = flag.Duration("interval", 2*time.Second, "refresh interval")
		once        = flag.Bool("once", false, "render one frame without clearing and exit")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("dynaqtop", dynaq.Version)
		return
	}

	top := &top{
		base:   strings.TrimRight(*coordinator, "/"),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *once {
		frame, err := top.render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqtop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}

	for {
		frame, err := top.render()
		if err != nil {
			frame = fmt.Sprintf("dynaqtop: %s unreachable: %v\n", top.base, err)
		}
		// Home the cursor and clear to the end of the screen — less flicker
		// than a full wipe, and a shrinking frame leaves no residue.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// top holds the poller state: HTTP plumbing plus the event follower for the
// most recent running job.
type top struct {
	base   string
	client *http.Client

	mu        sync.Mutex
	following string   // job id the event follower is attached to
	events    []string // ring of recent event lines, newest last
	cancel    context.CancelFunc
}

const eventRing = 8

// metrics is one parsed /metrics scrape: series id → value.
type metrics map[string]float64

func (t *top) render() (string, error) {
	m, err := t.scrapeMetrics()
	if err != nil {
		return "", err
	}
	health, err := t.getJSON("/healthz")
	if err != nil {
		return "", err
	}
	t.followRunningJob()

	var b strings.Builder
	now := time.Now().Format("15:04:05") //dynaqlint:allow determinism dashboard frame timestamp, not simulation state
	fmt.Fprintf(&b, "dynaqtop — %s — %s (daemon %v, %v)\n\n",
		t.base, now, health["version"], health["state"])

	fmt.Fprintf(&b, "  queue %-5.0f running %-3.0f workers %-3.0f leases %-3.0f deadletter %.0f\n",
		m["dynaqd_queue_depth"], m["dynaqd_jobs_running"], m["dynaqd_workers_active"],
		m["dynaqd_leases_live"], m["dynaqd_deadletter_size"])
	fmt.Fprintf(&b, "  jobs: %.0f submitted, %.0f done, %.0f failed, %.0f deduped   cells: %.0f run (%.0f remote)\n",
		m["dynaqd_jobs_submitted_total"], m["dynaqd_jobs_completed_total"],
		m["dynaqd_jobs_failed_total"], m["dynaqd_jobs_deduped_total"],
		m["dynaqd_cells_completed_total"], m["dynaqd_cells_remote_total"])
	fmt.Fprintf(&b, "  cache: %.0f hits / %.0f misses   retries %.0f   lease grants %.0f renews %.0f expiries %.0f   events dropped %.0f\n\n",
		m["dynaqd_cache_hits_total"], m["dynaqd_cache_misses_total"],
		m["dynaqd_cell_retries_total"], m["dynaqd_leases_granted_total"],
		m["dynaqd_leases_renewed_total"], m["dynaqd_leases_expired_total"],
		m["dynaqd_events_dropped_total"])

	b.WriteString("  workers (live leases)\n")
	workers := workerOccupancy(m)
	if len(workers) == 0 {
		b.WriteString("    none registered yet\n")
	}
	for _, w := range workers {
		bar := strings.Repeat("█", min(w.leases, 32))
		if w.leases == 0 {
			bar = "idle"
		}
		fmt.Fprintf(&b, "    %-20s %3d %s\n", w.id, w.leases, bar)
	}
	if tenants := tenantRows(m); len(tenants) > 0 {
		b.WriteString("\n  tenants (queued jobs / queued cells / in-flight cells, queue-wait p99)\n")
		for _, tr := range tenants {
			fmt.Fprintf(&b, "    %-20s jobs %-4d cells %-5d inflight %-4d dispatched %-6d wait p99≤%s ms (%.0f obs)\n",
				tr.name, tr.jobs, tr.cells, tr.inflight, tr.dispatched, tr.waitP99, tr.waitObs)
		}
	}
	b.WriteString("\n  latency (ms, from histogram buckets: value is the bucket upper bound)\n")
	for _, h := range []struct{ label, name string }{
		{"queue wait", "dynaqd_job_queue_wait_ms"},
		{"lease duration", "dynaqd_lease_duration_ms"},
		{"cell execution", "dynaqd_cell_execution_ms"},
		{"job end-to-end", "dynaqd_job_e2e_ms"},
	} {
		count := m[h.name+"_count"]
		if count < 1 {
			fmt.Fprintf(&b, "    %-16s no observations\n", h.label)
			continue
		}
		fmt.Fprintf(&b, "    %-16s p50≤%-8s p90≤%-8s p99≤%-8s (%.0f obs)\n", h.label,
			quantile(m, h.name, 0.50), quantile(m, h.name, 0.90), quantile(m, h.name, 0.99), count)
	}

	t.mu.Lock()
	following, events := t.following, append([]string(nil), t.events...)
	t.mu.Unlock()
	if following != "" {
		fmt.Fprintf(&b, "\n  events — job %s\n", following)
		for _, line := range events {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String(), nil
}

type workerRow struct {
	id     string
	leases int
}

// workerOccupancy extracts the dynaqd_worker_leases{worker="..."} series.
func workerOccupancy(m metrics) []workerRow {
	var out []workerRow
	for id, v := range m {
		rest, ok := strings.CutPrefix(id, `dynaqd_worker_leases{worker="`)
		if !ok {
			continue
		}
		name, ok := strings.CutSuffix(rest, `"}`)
		if !ok {
			continue
		}
		out = append(out, workerRow{id: name, leases: int(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// tenantRow is one tenant's queue pressure as seen in a scrape.
type tenantRow struct {
	name       string
	jobs       int // whole jobs waiting for admission
	cells      int // cells queued in the fair dispatch tree
	inflight   int // cells currently leased or executing locally
	dispatched int // cumulative lease grants + local claims
	waitP99    string
	waitObs    float64
}

// tenantRows extracts the dynaqd_tenant_*{tenant="..."} series. Tenants are
// discovered from the queue-depth gauge, which registers on first sight and
// lives for the daemon's lifetime.
func tenantRows(m metrics) []tenantRow {
	var out []tenantRow
	for id := range m {
		rest, ok := strings.CutPrefix(id, `dynaqd_tenant_queue_depth{tenant="`)
		if !ok {
			continue
		}
		name, ok := strings.CutSuffix(rest, `"}`)
		if !ok {
			continue
		}
		label := `{tenant="` + name + `"}`
		r := tenantRow{
			name:       name,
			jobs:       int(m["dynaqd_tenant_queue_depth"+label]),
			cells:      int(m["dynaqd_tenant_cells_queued"+label]),
			inflight:   int(m["dynaqd_tenant_inflight"+label]),
			dispatched: int(m["dynaqd_tenant_dispatch_total"+label]),
			waitObs:    m["dynaqd_tenant_queue_wait_ms_count"+label],
		}
		// The le label is spliced after the tenant label in bucket series.
		r.waitP99 = quantileFrom(m,
			`dynaqd_tenant_queue_wait_ms_bucket{tenant="`+name+`",le="`, r.waitObs, 0.99)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// quantile reads a cumulative-bucket histogram out of the scrape and reports
// the upper bound of the first bucket covering quantile q.
func quantile(m metrics, name string, q float64) string {
	return quantileFrom(m, name+`_bucket{le="`, m[name+"_count"], q)
}

// quantileFrom is the shared bucket walk: prefix is everything of the series
// id up to the le value, total the matching _count sample.
func quantileFrom(m metrics, prefix string, total float64, q float64) string {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for id, v := range m {
		rest, ok := strings.CutPrefix(id, prefix)
		if !ok {
			continue
		}
		leStr, ok := strings.CutSuffix(rest, `"}`)
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil { // the +Inf bucket
			le = 1e18
		}
		buckets = append(buckets, bucket{le: le, cum: v})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if total < 1 || len(buckets) == 0 {
		return "-"
	}
	target := q * total
	for _, bk := range buckets {
		if bk.cum >= target {
			if bk.le >= 1e18 {
				return "+Inf"
			}
			return strconv.FormatFloat(bk.le, 'f', -1, 64)
		}
	}
	return "+Inf"
}

// scrapeMetrics fetches and parses /metrics (Prometheus text format).
func (t *top) scrapeMetrics() (metrics, error) {
	resp, err := t.client.Get(t.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	out := make(metrics)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The series id may itself contain spaces inside quoted label
		// values, so split on the LAST space.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// getJSON fetches one endpoint into a generic map.
func (t *top) getJSON(path string) (map[string]any, error) {
	resp, err := t.client.Get(t.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// followRunningJob points the event follower at the most recent running (or,
// failing that, queued) job, restarting the stream goroutine on change.
func (t *top) followRunningJob() {
	resp, err := t.client.Get(t.base + "/v1/jobs")
	if err != nil {
		return
	}
	var jobs []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if err != nil {
		return
	}
	target := ""
	for _, j := range jobs {
		if j.State == "running" {
			target = j.ID
			break
		}
		if j.State == "queued" && target == "" {
			target = j.ID
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if target == "" || target == t.following {
		return
	}
	if t.cancel != nil {
		t.cancel()
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.following = target
	t.events = nil
	t.cancel = cancel
	go t.streamEvents(ctx, target)
}

// streamEvents tails one job's event stream into the ring buffer.
func (t *top) streamEvents(ctx context.Context, id string) {
	req, err := http.NewRequestWithContext(ctx, "GET", t.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return
	}
	// The stream client must not inherit the poller's timeout: event
	// streams are long-lived by design.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 64<<20))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 160 {
			line = line[:157] + "..."
		}
		t.mu.Lock()
		if t.following != id {
			t.mu.Unlock()
			return
		}
		t.events = append(t.events, line)
		if len(t.events) > eventRing {
			t.events = t.events[len(t.events)-eventRing:]
		}
		t.mu.Unlock()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
