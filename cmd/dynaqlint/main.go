// Command dynaqlint is the repo's determinism and invariant linter: a
// stdlib-only static-analysis pass (go/parser + go/types, no x/tools) that
// flags source constructs which silently break the simulator's
// byte-identical (scenario, seed) replay guarantee. See internal/lint for
// the analyzers and DESIGN.md ("Determinism rules") for the rationale.
//
// Usage:
//
//	dynaqlint ./...                # lint every package, human output
//	dynaqlint -json ./...          # one JSON object per finding
//	dynaqlint -list                # describe the analyzers
//	dynaqlint ./internal/core      # lint one package
//
// Exit status: 0 when clean, 1 when any unsuppressed diagnostic was
// reported, 2 on usage or load errors. CI runs `go run ./cmd/dynaqlint
// ./...` and fails the build on any finding; legitimate sites carry a
// `//dynaqlint:allow <analyzer> <reason>` directive instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynaq"
	"dynaq/internal/lint"
)

func main() {
	asJSON := flag.Bool("json", false, "emit machine-readable JSON Lines instead of text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dynaqlint [-json] [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println("dynaqlint", dynaq.Version)
		return
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("  %-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintf(os.Stderr, "dynaqlint: no packages matched %v\n", patterns)
		os.Exit(2)
	}
	moduleRoot, modulePath, err := lint.ModuleInfo(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	cfg := lint.DefaultConfig()
	var diags []lint.Diagnostic
	loadFailed := false
	for _, dir := range dirs {
		importPath, err := lint.DirImportPath(moduleRoot, modulePath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
			os.Exit(2)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %s: %v\n", dir, err)
			loadFailed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "dynaqlint: %s: typecheck: %v\n", importPath, terr)
			loadFailed = true
		}
		diags = append(diags, lint.Run(pkg, analyzers, cfg)...)
	}

	if *asJSON {
		err = lint.WriteJSON(os.Stdout, diags)
	} else {
		err = lint.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "dynaqlint: %d finding(s); fix them or add //dynaqlint:allow <analyzer> <reason>\n", len(diags))
		}
		os.Exit(1)
	}
}
