// Command dynaqlint is the repo's determinism and invariant linter: a
// stdlib-only static-analysis pass (go/parser + go/types, no x/tools) that
// flags source constructs which silently break the simulator's
// byte-identical (scenario, seed) replay guarantee. See internal/lint for
// the analyzers and DESIGN.md ("Determinism rules") for the rationale.
//
// Usage:
//
//	dynaqlint ./...                          # lint every package, human output
//	dynaqlint -json ./...                    # one JSON object per finding
//	dynaqlint -list                          # describe the analyzers
//	dynaqlint ./internal/core                # lint one package
//	dynaqlint -baseline lint_baseline.json ./...        # fail only on NEW findings
//	dynaqlint -write-baseline lint_baseline.json ./...  # (re)record the baseline
//
// All requested packages are loaded up front and analyzed against a shared
// whole-program function index, so the interprocedural analyzers
// (determinism-taint) can follow a value through helpers in other packages.
//
// Exit status: 0 when clean (or clean modulo the baseline), 1 when any
// unsuppressed, non-baselined diagnostic was reported, 2 on usage or load
// errors. CI runs `go run ./cmd/dynaqlint -baseline lint_baseline.json ./...`
// and fails the build on any new finding; legitimate sites carry a
// `//dynaqlint:allow <analyzer> <reason>` directive instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynaq"
	"dynaq/internal/lint"
)

func main() {
	asJSON := flag.Bool("json", false, "emit machine-readable JSON Lines instead of text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	baselinePath := flag.String("baseline", "", "compare findings against this JSON baseline; fail only on findings not in it")
	writeBaseline := flag.String("write-baseline", "", "write the findings to this JSON baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dynaqlint [-json] [-list] [-baseline file] [-write-baseline file] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println("dynaqlint", dynaq.Version)
		return
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("  %-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintf(os.Stderr, "dynaqlint: -baseline and -write-baseline are mutually exclusive\n")
		os.Exit(2)
	}

	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintf(os.Stderr, "dynaqlint: no packages matched %v\n", patterns)
		os.Exit(2)
	}
	moduleRoot, modulePath, err := lint.ModuleInfo(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}

	// Phase 1: load everything, so the cross-package function index is
	// complete before any analyzer runs.
	loader := lint.NewLoader()
	cfg := lint.DefaultConfig()
	var pkgs []*lint.Package
	loadFailed := false
	for _, dir := range dirs {
		importPath, err := lint.DirImportPath(moduleRoot, modulePath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
			os.Exit(2)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %s: %v\n", dir, err)
			loadFailed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "dynaqlint: %s: typecheck: %v\n", importPath, terr)
			loadFailed = true
		}
		pkgs = append(pkgs, pkg)
	}

	// Phase 2: analyze each package against the shared program.
	prog := lint.NewProgram(pkgs)
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.RunWithProgram(pkg, prog, analyzers, cfg)...)
	}

	if *writeBaseline != "" {
		if loadFailed {
			fmt.Fprintf(os.Stderr, "dynaqlint: refusing to write a baseline from a partial load\n")
			os.Exit(2)
		}
		if err := lint.NewBaseline(diags).WriteFile(*writeBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dynaqlint: wrote %d finding(s) to baseline %s\n", len(diags), *writeBaseline)
		return
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
			os.Exit(2)
		}
		diags, stale = lint.ApplyBaseline(base, diags)
	}

	if *asJSON {
		err = lint.WriteJSON(os.Stdout, diags)
	} else {
		err = lint.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaqlint: %v\n", err)
		os.Exit(2)
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "dynaqlint: stale baseline entry (%d no longer found): %s: %s: %s\n", e.Count, e.File, e.Analyzer, e.Message)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		if !*asJSON {
			what := "finding(s)"
			if *baselinePath != "" {
				what = "finding(s) not in baseline"
			}
			fmt.Fprintf(os.Stderr, "dynaqlint: %d %s; fix them or add //dynaqlint:allow <analyzer> <reason>\n", len(diags), what)
		}
		os.Exit(1)
	case len(stale) > 0:
		fmt.Fprintf(os.Stderr, "dynaqlint: baseline is stale; regenerate with -write-baseline %s\n", *baselinePath)
		os.Exit(1)
	}
}
