// Command dynaqd is the simulation-as-a-service coordinator: it accepts
// scenario JSON over HTTP, queues (scheme, seed, scenario) cells into a
// bounded per-tenant fair queue, hands them to pull-based dynaqworker
// processes under time-boxed heartbeat-renewed leases (falling back to a
// local executor pool when no workers are registered), and serves results
// from a content-addressed on-disk cache — identical submissions return
// identical bytes without re-running, no matter which node computed them.
//
// Multi-tenant isolation mirrors the paper's per-service-queue buffer
// partitioning: submissions carry a tenant (X-Dynaq-Tenant header or
// "tenant" body field; absent means "default"), dispatch rotates across
// tenants by -tenant-weights, -tenant-quota bounds each tenant's queued
// jobs, and -tenant-inflight caps its simultaneously dispatched cells. A
// coordinator run with no tenant flags and no tenant headers behaves —
// byte for byte — like the single-queue daemon it replaces.
//
// Endpoints:
//
//	POST /v1/jobs                     submit a scenario (or {"scenario":..., "schemes":[...], "seeds":[...]} sweep)
//	GET  /v1/jobs                     list known jobs
//	GET  /v1/jobs/{id}                job status, per-cell cache keys, attempts, and artifact paths
//	GET  /v1/jobs/{id}/events         live progress as chunked JSONL (replayed from cache for finished jobs)
//	GET  /v1/jobs/{id}/trace          span tree as JSONL; ?format=chrome for chrome://tracing / Perfetto
//	POST /v1/leases                   pull one cell of work (dynaqworker)
//	POST /v1/leases/{id}/heartbeat    renew a held lease
//	POST /v1/leases/{id}/complete     upload a finished cell's artifacts
//	GET  /v1/deadletter               list quarantined cells
//	POST /v1/deadletter/requeue       put quarantined cells back in play
//	GET  /metrics                     Prometheus text format: server counters + cumulative sim series
//	GET  /healthz                     liveness, build version, queue depth, fleet state
//
// Failed cells retry with capped exponential backoff (deterministically
// jittered per cell) up to -max-attempts, then quarantine to the persisted
// dead-letter list. SIGTERM/SIGINT drain gracefully: cells already
// executing locally finish, leased and pending cells requeue with attempt
// counters persisted, and queued jobs resume on the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynaq"
	"dynaq/internal/server"
)

// parseTenantWeights turns a "prod=3,batch=1" flag value into the weight
// map the server's fair dispatch tree consumes. Empty input means no
// explicit weights (every tenant weighs 1).
func parseTenantWeights(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights: %q is not tenant=weight", pair)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: weight for %q must be a positive integer, got %q", name, val)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataDir     = flag.String("data", "dynaqd-data", "state directory (queue, cache, job records)")
		queueDepth  = flag.Int("queue", 64, "bounded FIFO depth; submissions beyond it get 503")
		concurrency = flag.Int("concurrency", 0, "worker pool size for one job's cells (0 = GOMAXPROCS)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution bound (e.g. 5m); 0 disables")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "worker lease TTL; a cell whose lease lapses is requeued")
		maxAttempts = flag.Int("max-attempts", 3, "failed attempts before a cell is quarantined to the dead-letter list")
		retryBase   = flag.Duration("retry-base", 250*time.Millisecond, "base delay of the capped exponential retry backoff")
		retryCap    = flag.Duration("retry-cap", 10*time.Second, "ceiling of the retry backoff")
		showVersion = flag.Bool("version", false, "print the build version and exit")

		tenantWeights  = flag.String("tenant-weights", "", `comma-separated tenant=weight pairs for the fair dispatch rotation (e.g. "prod=3,batch=1"); unlisted tenants weigh 1`)
		tenantQuota    = flag.Int("tenant-quota", 0, "max queued jobs per tenant; a full tenant gets its own 503 while others keep submitting (0 = no per-tenant cap)")
		tenantInflight = flag.Int("tenant-inflight", 0, "max simultaneously dispatched cells per tenant (0 = unlimited)")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("dynaqd", dynaq.Version)
		return
	}

	logger := log.New(os.Stderr, "dynaqd: ", log.LstdFlags)
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		logger.Fatal(err)
	}
	srv, err := server.New(server.Config{
		DataDir:        *dataDir,
		QueueDepth:     *queueDepth,
		Concurrency:    *concurrency,
		JobTimeout:     *jobTimeout,
		LeaseTTL:       *leaseTTL,
		MaxAttempts:    *maxAttempts,
		RetryBase:      *retryBase,
		RetryCap:       *retryCap,
		TenantWeights:  weights,
		TenantQuota:    *tenantQuota,
		TenantInflight: *tenantInflight,
		Version:        dynaq.Version,
		Log:            logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("version %s listening on %s (data %s)", dynaq.Version, *addr, *dataDir)

	select {
	case err := <-errCh:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("drain: %v", err)
		os.Exit(1)
	}
	logger.Printf("clean shutdown")
}
