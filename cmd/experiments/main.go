// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all            # every figure at standard scale
//	experiments -fig 5,6,10         # selected figures
//	experiments -fig 8 -scale full  # paper-scale parameters
//	experiments -fig cycles         # the §IV-A hardware cost analysis
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dynaq"
	"dynaq/internal/experiment"
	"dynaq/internal/telemetry"
)

type renderer interface{ Table() string }

var figures = []struct {
	name string
	desc string
	run  func(o experiment.Options) (renderer, error)
}{
	{"1", "violated fair sharing under BestEffort (motivation)", wrap(experiment.Fig1)},
	{"3", "throughput convergence, 2 active DRR queues", wrap(experiment.Fig3)},
	{"4", "queue length evolution (same runs as fig 3)", wrap(experiment.Fig4)},
	{"5", "bandwidth sharing, 4 DRR queues with departures", wrap(experiment.Fig5)},
	{"6", "weighted fair sharing, weights 4:3:2:1", wrap(experiment.Fig6)},
	{"7", "mixed transports: NewReno + CUBIC under DynaQ", wrap(experiment.Fig7)},
	{"8", "FCT vs non-ECN schemes, SPQ+DRR, web search", wrap(experiment.Fig8)},
	{"9", "FCT vs ECN schemes (DCTCP), SPQ+DRR, web search", wrap(experiment.Fig9)},
	{"10", "bandwidth sharing on 10Gbps links", wrap(experiment.Fig10)},
	{"11", "bandwidth sharing on 100Gbps links (jumbo)", wrap(experiment.Fig11)},
	{"12", "100Gbps with extreme flow counts", wrap(experiment.Fig12)},
	{"13", "leaf-spine FCT, 4 workloads, ECMP", wrap(experiment.Fig13)},
	{"cycles", "§IV-A ASIC cycle budget of Algorithm 1", func(experiment.Options) (renderer, error) {
		return experiment.Cycles(), nil
	}},
	{"ablation-victim", "victim selection: max-extra vs naive max-threshold (§III-B)", wrap(experiment.AblationVictim)},
	{"ablation-wbdp", "satisfaction threshold: Eq.3 buffer share vs WBDP", wrap(experiment.AblationSatisfaction)},
	{"ablation-tcndrop", "TCN-drop strawman: dequeue dropping idles the link (§II-C)", wrap(experiment.AblationDequeueDrop)},
	{"ext-microburst", "microburst absorption: DynaQ vs BarberQ eviction vs BestEffort", wrap(experiment.ExtMicroburst)},
	{"ext-sharedmem", "shared-memory DT vs dedicated per-port buffers (§II-C)", wrap(experiment.ExtSharedMemory)},
	{"ext-protocol", "mixed DCTCP + CUBIC tenants: ECN schemes break, DynaQ holds (§II-B)", wrap(experiment.ExtProtocolDependence)},
	{"ext-tofino", "programmable-switch model: DynaQ on stale deq_qdepth (§IV-A)", wrap(experiment.ExtTofino)},
	{"ext-zoo", "transport zoo: reno/cubic/dctcp/timely queues under one scheme", wrap(experiment.ExtTransportZoo)},
	{"ext-closedloop", "Fig 8 with the §V-A2 request/response application (closed loop)", wrap(experiment.ExtClosedLoop)},
	{"ext-dynaq-ecn", "DynaQ drop mode (TCP) vs ECN mode (PMSB marking, DCTCP) (§III-B3)", wrap(experiment.ExtDynaQECNMode)},
	{"ext-faults", "scripted faults: flapping NIC/spine + lossy optics, guardrail armed", wrap(experiment.ExtFaults)},
	{"2", "workload flow-size distributions (Figure 2)", wrap(experiment.Fig2)},
}

func wrap[T renderer](f func(experiment.Options) (T, error)) func(experiment.Options) (renderer, error) {
	return func(o experiment.Options) (renderer, error) { return f(o) }
}

func main() {
	fig := flag.String("fig", "all", "comma-separated figure ids, or 'all'")
	scale := flag.String("scale", "standard", "quick | standard | full")
	engineF := flag.String("engine", "", "simulation engine for the FCT figures: packet (default) | flow | hybrid; static figures always run at packet level")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for independent simulation cells (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	list := flag.Bool("list", false, "list available figures")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	csvDir := flag.String("csv", "", "also write plottable CSV series into this directory")
	teleDir := flag.String("telemetry", "", "write per-figure run artifacts (manifest + result JSON) into this directory")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	progress := flag.Bool("progress", false, "print wall-clock progress heartbeats to stderr while figures run")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("experiments", dynaq.Version)
		return
	}

	stopProf, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	if *list {
		for _, f := range figures {
			fmt.Printf("  %-7s %s\n", f.name, f.desc)
		}
		return
	}
	var lvl experiment.ScaleLevel
	switch *scale {
	case "quick":
		lvl = experiment.Quick
	case "standard":
		lvl = experiment.Standard
	case "full":
		lvl = experiment.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	engine, err := experiment.ParseEngineMode(*engineF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	opts := experiment.Options{Scale: lvl, Seed: *seed, Parallel: *parallel, Engine: engine}

	want := map[string]bool{}
	if *fig != "all" {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	ran := 0
	for _, f := range figures {
		if *fig != "all" && !want[f.name] {
			continue
		}
		ran++
		//dynaqlint:allow determinism wall-clock progress timing for the operator; never feeds simulation state
		start := time.Now()
		if !*asJSON {
			fmt.Printf("=== Figure %s: %s (scale=%s) ===\n", f.name, f.desc, lvl)
		}
		stopTick := startTicker(*progress, f.name, start)
		res, err := f.run(opts)
		stopTick()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *teleDir != "" {
			if err := writeFigureArtifacts(*teleDir, f.name, lvl.String(), string(engine), *seed, res); err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: telemetry: %v\n", f.name, err)
				os.Exit(1)
			}
		}
		if *asJSON {
			out := map[string]any{
				"figure": f.name,
				"scale":  lvl.String(),
				"seed":   *seed,
				//dynaqlint:allow determinism reports wall-clock runtime to the operator; excluded from result comparison
				"seconds": time.Since(start).Seconds(),
				"result":  res,
			}
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(out); err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: encode: %v\n", f.name, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Print(res.Table())
		if *csvDir != "" {
			if d, ok := res.(experiment.CSVDumper); ok {
				paths, err := d.WriteCSV(*csvDir)
				if err != nil {
					fmt.Fprintf(os.Stderr, "figure %s: csv: %v\n", f.name, err)
					os.Exit(1)
				}
				for _, p := range paths {
					fmt.Printf("wrote %s\n", p)
				}
			}
		}
		//dynaqlint:allow determinism wall-clock progress timing for the operator; never feeds simulation state
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figure matched %q (use -list)\n", *fig)
		os.Exit(2)
	}
}

// startTicker, when enabled, prints a wall-clock heartbeat to stderr every
// few seconds while a figure runs; the returned stop function silences it.
// The ticker only reports to the operator — nothing it touches feeds results.
func startTicker(enabled bool, name string, start time.Time) func() {
	if !enabled {
		return func() {}
	}
	t := time.NewTicker(5 * time.Second)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-t.C:
				//dynaqlint:allow determinism wall-clock heartbeat for the operator; never feeds simulation state
				fmt.Fprintf(os.Stderr, "experiments: figure %s running (%.0fs)\n", name, time.Since(start).Seconds())
			case <-done:
				return
			}
		}
	}()
	return func() {
		t.Stop()
		close(done)
	}
}

// writeFigureArtifacts records one figure run under <dir>/<figure>: a
// manifest (hashing the figure/scale/seed tuple that fully determines the
// run) and the figure's result rendered as JSON. Struct field order keeps
// result.json byte-stable across identical runs.
func writeFigureArtifacts(dir, figure, scale, engine string, seed int64, res renderer) error {
	sub := filepath.Join(dir, figure)
	canonical := fmt.Sprintf("fig=%s scale=%s engine=%s seed=%d", figure, scale, engine, seed)
	man := telemetry.Manifest{
		Tool:         "experiments",
		Version:      dynaq.Version,
		ScenarioHash: telemetry.Hash([]byte(canonical)),
		Seed:         seed,
		Scheme:       figure,
		Engine:       engine,
		Args:         os.Args[1:],
	}
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	if err := telemetry.WriteManifest(sub, man, []telemetry.SummaryEntry{{Key: "scale", Value: scale}}); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(sub, "result.json"), append(data, '\n'), 0o644)
}
