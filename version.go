package dynaq

// Version identifies the build of this module. It defaults to "dev" and is
// meant to be stamped at link time:
//
//	go build -ldflags "-X dynaq.Version=v1.2.3" ./...
//
// Every CLI surfaces it via -version, and dynaqd folds it into run
// manifests and content-addressed cache keys: a result produced by one
// build must never be served as the result of another, so the version is
// part of a cached artifact's identity alongside (scenario hash, scheme,
// seed).
var Version = "dev"
