// Package dynaq is a reproduction of "Protocol-Independent Service Queue
// Isolation for Multi-Queue Data Centers" (Kim & Lee, ICDCS 2020): the
// DynaQ dynamic packet-dropping-threshold algorithm, the buffer-management
// schemes it is evaluated against, and a packet-level discrete-event
// network simulator (schedulers, TCP/CUBIC/DCTCP transports, star and
// leaf-spine topologies, empirical workloads) that regenerates every
// figure in the paper's evaluation.
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so applications depend on a single import.
//
// # The algorithm
//
// A DynaQ State tracks one packet-dropping threshold per service queue of
// a switch port and adjusts them on every packet arrival (Algorithm 1):
//
//	st := dynaq.MustNew(85*dynaq.KB, []int64{1, 1, 1, 1})
//	res := st.Process(queue, pktSize, queueLens)
//	switch res.Verdict {
//	case dynaq.Drop:     // protect unsatisfied active queues: drop
//	case dynaq.Adjusted: // threshold stolen from res.Victim: enqueue
//	case dynaq.Pass:     // within threshold: enqueue
//	}
//
// # Simulation
//
// NewStarNetwork and NewLeafSpineNetwork assemble complete simulated
// networks whose switch ports run any Scheme; see examples/ for runnable
// scenarios and RunFig* for the paper's experiments.
package dynaq

import (
	"dynaq/internal/app"
	"dynaq/internal/buffer"
	"dynaq/internal/core"
	"dynaq/internal/experiment"
	"dynaq/internal/metrics"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/trace"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// Quantities (see internal/units): simulated time is picosecond-resolution.
type (
	// Time is a point in simulated time.
	Time = units.Time
	// Duration is a span of simulated time.
	Duration = units.Duration
	// ByteSize is a data quantity in bytes.
	ByteSize = units.ByteSize
	// Rate is a link or flow rate in bits per second.
	Rate = units.Rate
)

// Common quantity constants.
const (
	Picosecond  = units.Picosecond
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	Byte = units.Byte
	KB   = units.KB
	MB   = units.MB
	GB   = units.GB

	Mbps = units.Mbps
	Gbps = units.Gbps
)

// BDP returns the bandwidth-delay product C·RTT in bytes.
func BDP(c Rate, rtt Duration) ByteSize { return units.BDP(c, rtt) }

// Throughput returns the average rate of b bytes delivered over d.
func Throughput(b ByteSize, d Duration) Rate { return units.Throughput(b, d) }

// The DynaQ algorithm (see internal/core).
type (
	// State is a port's DynaQ threshold state (Algorithm 1).
	State = core.State
	// Result is the outcome of processing one arrival.
	Result = core.Result
	// Verdict classifies the outcome.
	Verdict = core.Verdict
	// QueueLens supplies per-queue backlogs to Process.
	QueueLens = core.QueueLens
	// QueueLenFunc adapts a function to QueueLens.
	QueueLenFunc = core.QueueLenFunc
	// ECNMode is DynaQ's PMSB-style marking mode (§III-B3).
	ECNMode = core.ECNMode
)

// Verdicts.
const (
	Pass     = core.Pass
	Adjusted = core.Adjusted
	Drop     = core.Drop
)

// New builds DynaQ state for a port with buffer b and scheduler weights.
func New(b ByteSize, weights []int64) (*State, error) { return core.New(b, weights) }

// MustNew is New but panics on error.
func MustNew(b ByteSize, weights []int64) *State { return core.MustNew(b, weights) }

// NewECNMode builds DynaQ's ECN marking mode with port threshold k.
func NewECNMode(k ByteSize, weights []int64) (*ECNMode, error) {
	return core.NewECNMode(k, weights)
}

// CycleCost returns Algorithm 1's worst-case ASIC cycle count for m queues
// (§IV-A: 7 for m = 8).
func CycleCost(m int) int { return core.CycleCost(m) }

// Schemes and schedulers (see internal/experiment).
type (
	// Scheme identifies a buffer-management scheme.
	Scheme = experiment.Scheme
	// SchedKind identifies a packet scheduler.
	SchedKind = experiment.SchedKind
	// SchemeParams carries threshold constants for scheme construction.
	SchemeParams = experiment.SchemeParams
)

// Buffer-management schemes.
const (
	SchemeBestEffort  = experiment.BestEffort
	SchemePQL         = experiment.PQL
	SchemeDynaQ       = experiment.DynaQ
	SchemeTCN         = experiment.TCN
	SchemePMSB        = experiment.PMSB
	SchemePerQueueECN = experiment.PerQueueECN
	SchemeMQECN       = experiment.MQECN
	SchemeTCNDrop     = experiment.TCNDrop
	SchemeBarberQ     = experiment.BarberQ

	// DynaQ design-choice ablations (§III-B).
	SchemeDynaQNaiveVictim = experiment.DynaQNaiveVictim
	SchemeDynaQWBDP        = experiment.DynaQWBDP

	// SchemeDynaQTofino is the §IV-A programmable-switch model (Algorithm
	// 1 on dequeue-time-stale queue lengths).
	SchemeDynaQTofino = experiment.DynaQTofino

	// SchemeDynaQECN is DynaQ's ECN mode (§III-B3): PMSB-style marking
	// for ECN-based transports, no threshold adjustment.
	SchemeDynaQECN = experiment.DynaQECN
)

// Packet schedulers.
const (
	DRR    = experiment.SchedDRR
	WRR    = experiment.SchedWRR
	SPQDRR = experiment.SchedSPQDRR
)

// Simulation building blocks.
type (
	// Simulator is the discrete-event engine.
	Simulator = sim.Simulator
	// Packet is the simulated segment.
	Packet = packet.Packet
	// FlowID identifies a transport flow.
	FlowID = packet.FlowID
	// Port is a switch output port (or host NIC).
	Port = netsim.Port
	// Switch is an output-queued switch.
	Switch = netsim.Switch
	// Host is an end host.
	Host = netsim.Host
	// Endpoint is a host's transport stack.
	Endpoint = transport.Endpoint
	// Sender is one flow source.
	Sender = transport.Sender
	// FlowConfig describes a flow to start.
	FlowConfig = transport.FlowConfig
	// Controller is a congestion-control algorithm.
	Controller = transport.Controller
	// StarNetwork is a single-switch rack.
	StarNetwork = topology.Star
	// LeafSpineNetwork is a two-tier fabric.
	LeafSpineNetwork = topology.LeafSpine
	// Admission is a buffer-management scheme instance.
	Admission = buffer.Admission
	// Scheduler is a packet scheduler instance.
	Scheduler = sched.Scheduler
	// CDF is an empirical flow-size distribution.
	CDF = workload.CDF
	// FlowGen draws Poisson flow arrivals from a CDF.
	FlowGen = workload.FlowGen
	// FCTCollector accumulates flow completion times.
	FCTCollector = metrics.FCTCollector
	// ThroughputSampler samples per-queue throughput at a port.
	ThroughputSampler = metrics.ThroughputSampler
	// QueueTrace records queue-length evolution at a port.
	QueueTrace = metrics.QueueTrace
)

// NewSimulator returns an empty discrete-event simulator.
func NewSimulator() *Simulator { return sim.New() }

// NewRenoController returns NewReno TCP (the paper's generic "TCP").
func NewRenoController() Controller { return transport.NewReno() }

// NewCubicController returns CUBIC.
func NewCubicController() Controller { return transport.NewCubic() }

// NewDCTCPController returns DCTCP (set FlowConfig.ECN on its flows).
func NewDCTCPController() Controller { return transport.NewDCTCP() }

// NewECNRenoController returns classic RFC 3168 ECN on NewReno (set
// FlowConfig.ECN on its flows).
func NewECNRenoController() Controller { return transport.NewECNReno() }

// NewTimelyController returns a TIMELY-like delay-based controller (§II-B
// cites delay-based transports as DynaQ's motivation).
func NewTimelyController() Controller { return transport.NewTimely() }

// StarConfig configures NewStarNetwork.
type StarConfig struct {
	// Hosts is the number of end hosts (≥ 2).
	Hosts int
	// Rate is the speed of every link.
	Rate Rate
	// Delay is per-link propagation; the base RTT is 4·Delay.
	Delay Duration
	// Buffer is the switch per-port buffer size B.
	Buffer ByteSize
	// Queues is the number of service queues per port.
	Queues int
	// Scheme is the buffer-management scheme on every port.
	Scheme Scheme
	// Sched is the packet scheduler on every port.
	Sched SchedKind
	// Weights are the scheduler weights (equal when nil). For SPQDRR they
	// include the strict-priority queue at index 0.
	Weights []int64
	// MTU is the frame size (1500 when zero).
	MTU ByteSize
	// Params optionally tunes scheme thresholds; Rate/BaseRTT/Weights are
	// filled automatically.
	Params SchemeParams
}

// NewStarNetwork assembles a single-switch rack whose every port runs the
// configured scheme and scheduler.
func NewStarNetwork(s *Simulator, cfg StarConfig) (*StarNetwork, error) {
	p, mtu := cfg.Params, cfg.MTU
	if mtu == 0 {
		mtu = 1500
	}
	if p.Rate == 0 {
		p.Rate = cfg.Rate
	}
	if p.BaseRTT == 0 {
		p.BaseRTT = 4 * cfg.Delay
	}
	if p.Weights == nil {
		p.Weights = cfg.Weights
	}
	if p.Weights == nil {
		p.Weights = make([]int64, cfg.Queues)
		for i := range p.Weights {
			p.Weights[i] = 1
		}
	}
	kind := cfg.Sched
	if kind == "" {
		kind = DRR
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = SchemeDynaQ
	}
	return topology.NewStar(s, topology.StarConfig{
		Hosts:     cfg.Hosts,
		Rate:      cfg.Rate,
		Delay:     cfg.Delay,
		Buffer:    cfg.Buffer,
		Queues:    cfg.Queues,
		Factories: experiment.Factories(scheme, kind, p, mtu),
	})
}

// LeafSpineConfig configures NewLeafSpineNetwork.
type LeafSpineConfig struct {
	Leaves, Spines, HostsPerLeaf int
	Rate                         Rate
	// Delay is per-link propagation; the spine-crossing base RTT is
	// 8·Delay.
	Delay   Duration
	Buffer  ByteSize
	Queues  int
	Scheme  Scheme
	Sched   SchedKind
	Weights []int64
	MTU     ByteSize
	Params  SchemeParams
}

// NewLeafSpineNetwork assembles a two-tier ECMP fabric.
func NewLeafSpineNetwork(s *Simulator, cfg LeafSpineConfig) (*LeafSpineNetwork, error) {
	p, mtu := cfg.Params, cfg.MTU
	if mtu == 0 {
		mtu = 1500
	}
	if p.Rate == 0 {
		p.Rate = cfg.Rate
	}
	if p.BaseRTT == 0 {
		p.BaseRTT = 8 * cfg.Delay
	}
	if p.Weights == nil {
		p.Weights = cfg.Weights
	}
	if p.Weights == nil {
		p.Weights = make([]int64, cfg.Queues)
		for i := range p.Weights {
			p.Weights[i] = 1
		}
	}
	kind := cfg.Sched
	if kind == "" {
		kind = DRR
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = SchemeDynaQ
	}
	return topology.NewLeafSpine(s, topology.LeafSpineConfig{
		Leaves:       cfg.Leaves,
		Spines:       cfg.Spines,
		HostsPerLeaf: cfg.HostsPerLeaf,
		Rate:         cfg.Rate,
		Delay:        cfg.Delay,
		Buffer:       cfg.Buffer,
		Queues:       cfg.Queues,
		Factories:    experiment.Factories(scheme, kind, p, mtu),
	})
}

// Workloads (Figure 2).
var (
	// WebSearch is the DCTCP web-search workload.
	WebSearch = workload.WebSearch
	// DataMining is the VL2 data-mining workload.
	DataMining = workload.DataMining
	// CacheWorkload is Facebook's cache workload.
	CacheWorkload = workload.Cache
	// HadoopWorkload is Facebook's hadoop workload.
	HadoopWorkload = workload.Hadoop
)

// NewFlowGen builds a Poisson flow generator loading capacity·load.
func NewFlowGen(seed int64, cdf *CDF, capacity Rate, load float64) (*FlowGen, error) {
	return workload.NewFlowGen(seed, cdf, capacity, load)
}

// NewThroughputSampler attaches a per-queue throughput sampler to a port.
func NewThroughputSampler(s *Simulator, p *Port, interval Duration) *ThroughputSampler {
	return metrics.NewThroughputSampler(s, p, interval)
}

// NewQueueTrace attaches a queue-evolution trace to a port, keeping every
// stride-th sample.
func NewQueueTrace(p *Port, stride int) *QueueTrace {
	return metrics.NewQueueTrace(p, stride)
}

// NewFCTCollector returns an empty flow-completion-time collector.
func NewFCTCollector() *FCTCollector { return metrics.NewFCTCollector() }

// Bucket classifies flows by size for FCT breakdowns.
type Bucket = metrics.Bucket

// Flow-size buckets (§V: small ≤ 100KB, large > 10MB).
const (
	AllFlows    = metrics.AllFlows
	SmallFlows  = metrics.SmallFlows
	MediumFlows = metrics.MediumFlows
	LargeFlows  = metrics.LargeFlows
)

// Jain computes Jain's fairness index.
func Jain(xs []float64) float64 { return metrics.Jain(xs) }

// Experiments (one per paper figure; see cmd/experiments).
type (
	// Options selects the experiment scale and seed.
	Options = experiment.Options
	// ScaleLevel is Quick, Standard, or Full.
	ScaleLevel = experiment.ScaleLevel
)

// Scales.
const (
	ScaleQuick    = experiment.Quick
	ScaleStandard = experiment.Standard
	ScaleFull     = experiment.Full
)

// Figure runners. Each reproduces the corresponding evaluation figure.
var (
	RunFig1  = experiment.Fig1
	RunFig3  = experiment.Fig3
	RunFig4  = experiment.Fig4
	RunFig5  = experiment.Fig5
	RunFig6  = experiment.Fig6
	RunFig7  = experiment.Fig7
	RunFig8  = experiment.Fig8
	RunFig9  = experiment.Fig9
	RunFig10 = experiment.Fig10
	RunFig11 = experiment.Fig11
	RunFig12 = experiment.Fig12
	RunFig13 = experiment.Fig13

	// Figure 2 (workload characterization).
	RunFig2 = experiment.Fig2

	// Ablations and extensions (see EXPERIMENTS.md).
	RunAblationVictim       = experiment.AblationVictim
	RunAblationSatisfaction = experiment.AblationSatisfaction
	RunAblationDequeueDrop  = experiment.AblationDequeueDrop
	RunExtMicroburst        = experiment.ExtMicroburst
	RunExtSharedMemory      = experiment.ExtSharedMemory
	RunExtProtocol          = experiment.ExtProtocolDependence
	RunExtTofino            = experiment.ExtTofino
	RunExtTransportZoo      = experiment.ExtTransportZoo
	RunExtClosedLoop        = experiment.ExtClosedLoop
	RunExtDynaQECNMode      = experiment.ExtDynaQECNMode
)

// Request/response application (§V-A2's benchmark client).
type (
	// RequestClient issues Poisson requests over persistent connections
	// and collects user-perceived response latencies.
	RequestClient = app.Client
	// RequestConfig configures a RequestClient.
	RequestConfig = app.Config
)

// NewRequestClient builds the closed-loop benchmark client.
func NewRequestClient(s *Simulator, cfg RequestConfig) (*RequestClient, error) {
	return app.NewClient(s, cfg)
}

// SeedStats summarizes a metric across seeds (see RunSeeds).
type SeedStats = experiment.SeedStats

// RunSeeds repeats a scalar-metric experiment across n derived seeds and
// aggregates mean/std/min/max.
func RunSeeds(n int, base Options, run func(Options) (float64, error)) (SeedStats, error) {
	return experiment.RunSeeds(n, base, run)
}

// Tracing.
type (
	// TraceRecorder collects per-packet port events.
	TraceRecorder = trace.Recorder
	// PortEvent is one recorded event.
	PortEvent = netsim.PortEvent
	// PortEventKind classifies events.
	PortEventKind = netsim.PortEventKind
)

// Port event kinds.
const (
	EvEnqueue     = netsim.EvEnqueue
	EvDrop        = netsim.EvDrop
	EvMark        = netsim.EvMark
	EvEvict       = netsim.EvEvict
	EvDequeueDrop = netsim.EvDequeueDrop
	EvTransmit    = netsim.EvTransmit
)

// NewTraceRecorder builds a bounded per-packet event recorder; attach it
// with rec.Attach(port).
func NewTraceRecorder(capacity int) (*TraceRecorder, error) {
	return trace.NewRecorder(capacity)
}
