package dynaq_test

import (
	"testing"

	"dynaq"
)

// These tests exercise the public facade exactly as a downstream user
// would: only the dynaq package is imported.

func TestAlgorithmThroughFacade(t *testing.T) {
	st, err := dynaq.New(85*dynaq.KB, []int64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumQueues() != 4 || st.Buffer() != 85*dynaq.KB {
		t.Fatal("metadata wrong")
	}
	backlog := make([]dynaq.ByteSize, 4)
	lens := dynaq.QueueLenFunc(func(i int) dynaq.ByteSize { return backlog[i] })
	res := st.Process(0, 1500, lens)
	if res.Verdict != dynaq.Pass {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	backlog[0] = st.Threshold(0)
	res = st.Process(0, 1500, lens)
	if res.Verdict != dynaq.Adjusted {
		t.Fatalf("verdict = %v, want adjusted", res.Verdict)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if dynaq.CycleCost(8) != 7 {
		t.Fatal("CycleCost(8) != 7")
	}
}

func TestECNModeThroughFacade(t *testing.T) {
	m, err := dynaq.NewECNMode(60*dynaq.KB, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !m.ShouldMark(0, 61*dynaq.KB, 31*dynaq.KB) {
		t.Fatal("should mark")
	}
}

func TestQuantitiesThroughFacade(t *testing.T) {
	if got := dynaq.BDP(dynaq.Gbps, 500*dynaq.Microsecond); got != 62500 {
		t.Fatalf("BDP = %v", got)
	}
	if got := dynaq.Throughput(125*dynaq.MB, dynaq.Second); got != dynaq.Gbps {
		t.Fatalf("Throughput = %v", got)
	}
	if j := dynaq.Jain([]float64{1, 1}); j != 1 {
		t.Fatalf("Jain = %v", j)
	}
}

func TestStarNetworkThroughFacade(t *testing.T) {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
		Hosts:  2,
		Rate:   dynaq.Gbps,
		Delay:  125 * dynaq.Microsecond,
		Buffer: 85 * dynaq.KB,
		Queues: 4,
		// Scheme and Sched default to DynaQ + DRR.
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	var fct dynaq.Duration
	if _, err := net.Endpoints[0].StartFlow(dynaq.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: dynaq.MB,
		OnComplete: func(d dynaq.Duration) { done = true; fct = d },
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(dynaq.Time(dynaq.Second))
	if !done {
		t.Fatal("flow did not complete")
	}
	if fct <= 0 || fct > dynaq.Duration(dynaq.Second) {
		t.Fatalf("fct = %v", fct)
	}
	if net.Port(1).Stats().TxBytes < dynaq.MB {
		t.Fatal("no bytes delivered")
	}
}

func TestControllersThroughFacade(t *testing.T) {
	for _, c := range []dynaq.Controller{
		dynaq.NewRenoController(), dynaq.NewCubicController(), dynaq.NewDCTCPController(),
	} {
		if c.Name() == "" {
			t.Error("controller missing name")
		}
	}
}

func TestWorkloadsThroughFacade(t *testing.T) {
	for _, cdf := range []*dynaq.CDF{
		dynaq.WebSearch(), dynaq.DataMining(), dynaq.CacheWorkload(), dynaq.HadoopWorkload(),
	} {
		if cdf.Mean() <= 0 {
			t.Errorf("%s: bad mean", cdf.Name())
		}
	}
	g, err := dynaq.NewFlowGen(1, dynaq.WebSearch(), dynaq.Gbps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NextSize() <= 0 || g.NextInterarrival() < 0 {
		t.Fatal("generator produced nonsense")
	}
}

func TestLeafSpineThroughFacade(t *testing.T) {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewLeafSpineNetwork(s, dynaq.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		Rate:   10 * dynaq.Gbps,
		Delay:  10 * dynaq.Microsecond,
		Buffer: 192 * dynaq.KB,
		Queues: 4,
		Scheme: dynaq.SchemeDynaQ,
		Sched:  dynaq.SPQDRR,
		// SPQDRR weights: queue 0 strict, queues 1-3 DRR.
		Weights: []int64{1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := net.Endpoints[0].StartFlow(dynaq.FlowConfig{
		Flow: 1, Dst: 3, Class: 1, Size: dynaq.MB, MinRTO: 5 * dynaq.Millisecond,
		OnComplete: func(dynaq.Duration) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(dynaq.Time(dynaq.Second))
	if !done {
		t.Fatal("cross-rack flow did not complete")
	}
}

func TestMetricsThroughFacade(t *testing.T) {
	c := dynaq.NewFCTCollector()
	c.Add(10*dynaq.KB, dynaq.Millisecond)
	c.Add(20*dynaq.MB, 100*dynaq.Millisecond)
	if c.Avg(dynaq.SmallFlows) != dynaq.Millisecond {
		t.Fatal("small avg wrong")
	}
	if c.Avg(dynaq.LargeFlows) != 100*dynaq.Millisecond {
		t.Fatal("large avg wrong")
	}
	if c.Count(dynaq.AllFlows) != 2 {
		t.Fatal("count wrong")
	}
}

func TestExtensionSurfaceThroughFacade(t *testing.T) {
	// Every controller constructor produces a distinct named algorithm.
	names := map[string]bool{}
	for _, c := range []dynaq.Controller{
		dynaq.NewRenoController(), dynaq.NewCubicController(),
		dynaq.NewDCTCPController(), dynaq.NewECNRenoController(),
		dynaq.NewTimelyController(),
	} {
		if names[c.Name()] {
			t.Errorf("duplicate controller name %q", c.Name())
		}
		names[c.Name()] = true
	}
	// Extension schemes construct through the star builder.
	for _, scheme := range []dynaq.Scheme{
		dynaq.SchemeBarberQ, dynaq.SchemeDynaQTofino,
		dynaq.SchemeDynaQNaiveVictim, dynaq.SchemeDynaQWBDP,
	} {
		s := dynaq.NewSimulator()
		if _, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
			Hosts: 2, Rate: dynaq.Gbps, Delay: dynaq.Microsecond,
			Buffer: 85 * dynaq.KB, Queues: 4, Scheme: scheme,
		}); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

func TestRunSeedsThroughFacade(t *testing.T) {
	st, err := dynaq.RunSeeds(2, dynaq.Options{Scale: dynaq.ScaleQuick, Seed: 3},
		func(o dynaq.Options) (float64, error) { return float64(o.Seed), nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTraceRecorderThroughFacade(t *testing.T) {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
		Hosts: 2, Rate: dynaq.Gbps, Delay: dynaq.Microsecond,
		Buffer: 85 * dynaq.KB, Queues: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dynaq.NewTraceRecorder(16)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(net.Port(1))
	if _, err := net.Endpoints[0].StartFlow(dynaq.FlowConfig{
		Flow: 1, Dst: 1, Size: 10 * dynaq.KB,
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(dynaq.Time(dynaq.Second))
	if rec.Count(dynaq.EvEnqueue) == 0 || rec.Count(dynaq.EvTransmit) == 0 {
		t.Fatalf("recorder saw nothing: %s", rec.Summary())
	}
}
