// Fairsharing: the paper's headline scenario (Fig. 3) end to end.
//
// Two of four equal-weight DRR service queues on a 1GbE rack are active:
// queue 1 carries 2 TCP flows, queue 2 carries 16. Under best-effort buffer
// sharing the 16-flow queue monopolizes the 85KB port buffer and with it
// the bandwidth; under DynaQ both queues hold their fair halves.
//
//	go run ./examples/fairsharing
package main

import (
	"fmt"
	"log"

	"dynaq"
)

func main() {
	for _, scheme := range []dynaq.Scheme{dynaq.SchemeBestEffort, dynaq.SchemeDynaQ} {
		share, jain := run(scheme)
		fmt.Printf("%-11s queue-1 share = %.3f (ideal 0.500), Jain index = %.3f\n",
			scheme, share, jain)
	}
}

func run(scheme dynaq.Scheme) (share1 float64, jain float64) {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
		Hosts:  3, // two senders and one receiver
		Rate:   dynaq.Gbps,
		Delay:  125 * dynaq.Microsecond, // base RTT 500µs
		Buffer: 85 * dynaq.KB,
		Queues: 4,
		Scheme: scheme,
		Sched:  dynaq.DRR,
	})
	if err != nil {
		log.Fatal(err)
	}

	const receiver = 2
	flow := dynaq.FlowID(0)
	start := func(from int, class, n int) {
		for i := 0; i < n; i++ {
			flow++
			id := flow
			// Stagger starts over a few ms like real senders.
			s.At(dynaq.Time(i)*dynaq.Time(dynaq.Millisecond)/4, func() {
				if _, err := net.Endpoints[from].StartFlow(dynaq.FlowConfig{
					Flow: id, Dst: receiver, Class: class,
				}); err != nil {
					log.Fatal(err)
				}
			})
		}
	}
	start(0, 1, 2)  // queue 1: two flows from host 0
	start(1, 2, 16) // queue 2: sixteen flows from host 1

	sampler := dynaq.NewThroughputSampler(s, net.Port(receiver), 100*dynaq.Millisecond)
	s.RunUntil(dynaq.Time(5 * dynaq.Second))
	sampler.Stop()

	// Average the post-convergence window.
	var q1, q2 float64
	var jainSum float64
	var n int
	for _, smp := range sampler.Samples() {
		if smp.At < dynaq.Time(dynaq.Second) {
			continue
		}
		a, b := float64(smp.PerQueue[1]), float64(smp.PerQueue[2])
		q1 += a
		q2 += b
		jainSum += dynaq.Jain([]float64{a, b})
		n++
	}
	return q1 / (q1 + q2), jainSum / float64(n)
}
