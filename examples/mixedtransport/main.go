// Mixedtransport: protocol independence (Fig. 7).
//
// Four service queues, each fed by four long-lived flows — but queues 1-2
// run NewReno while queues 3-4 run CUBIC. ECN-based isolation schemes
// cannot even be configured for this mix without end-host cooperation;
// DynaQ, operating purely on buffer occupancy, splits the link four ways
// regardless of what congestion control the tenants picked.
//
//	go run ./examples/mixedtransport
package main

import (
	"fmt"
	"log"

	"dynaq"
)

func main() {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
		Hosts:  5, // four senders and one receiver
		Rate:   dynaq.Gbps,
		Delay:  125 * dynaq.Microsecond,
		Buffer: 85 * dynaq.KB,
		Queues: 4,
		Scheme: dynaq.SchemeDynaQ,
		Sched:  dynaq.DRR,
	})
	if err != nil {
		log.Fatal(err)
	}

	const receiver = 4
	flow := dynaq.FlowID(0)
	for class := 0; class < 4; class++ {
		class := class
		for i := 0; i < 4; i++ {
			flow++
			id := flow
			jitter := dynaq.Time(int64(class)*4+int64(i)) * dynaq.Time(dynaq.Millisecond) / 4
			s.At(jitter, func() {
				ctrl := dynaq.NewRenoController()
				if class >= 2 {
					ctrl = dynaq.NewCubicController()
				}
				if _, err := net.Endpoints[class].StartFlow(dynaq.FlowConfig{
					Flow: id, Dst: receiver, Class: class, Ctrl: ctrl,
				}); err != nil {
					log.Fatal(err)
				}
			})
		}
	}

	sampler := dynaq.NewThroughputSampler(s, net.Port(receiver), 500*dynaq.Millisecond)
	s.RunUntil(dynaq.Time(5 * dynaq.Second))
	sampler.Stop()

	fmt.Println("per-queue throughput (queues 1-2 NewReno, queues 3-4 CUBIC):")
	var rates [4]float64
	var n int
	for _, smp := range sampler.Samples() {
		if smp.At < dynaq.Time(dynaq.Second) {
			continue
		}
		for q := 0; q < 4; q++ {
			rates[q] += float64(smp.PerQueue[q])
		}
		n++
	}
	xs := make([]float64, 4)
	for q := 0; q < 4; q++ {
		xs[q] = rates[q] / float64(n)
		proto := "reno "
		if q >= 2 {
			proto = "cubic"
		}
		fmt.Printf("  queue %d (%s): %6.1f Mbps\n", q+1, proto, xs[q]/1e6)
	}
	fmt.Printf("Jain fairness index: %.3f (1.0 = perfect)\n", dynaq.Jain(xs))
}
