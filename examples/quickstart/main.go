// Quickstart: the DynaQ algorithm itself, no network required.
//
// This example drives Algorithm 1 by hand: four service queues share an
// 85KB port buffer; queue 2 floods packets while queue 1 trickles. Watch
// the dropping thresholds move — queue 2 grows into the idle queues'
// budget, but the moment queue 1 becomes active and unsatisfied, its
// threshold budget is protected and queue 2's overflow packets drop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dynaq"
)

func main() {
	const pktSize = 1500

	st := dynaq.MustNew(85*dynaq.KB, []int64{1, 1, 1, 1})
	fmt.Println("initial thresholds (Eq. 1: B·w_i/Σw):")
	printState(st)

	// The port's live queue backlogs (what the switch would report).
	backlog := make([]dynaq.ByteSize, 4)
	lens := dynaq.QueueLenFunc(func(i int) dynaq.ByteSize { return backlog[i] })

	// Phase 1: queue 2 floods an otherwise idle port. Every time it
	// exceeds its threshold, DynaQ steals budget from an idle queue
	// instead of dropping — work conservation.
	fmt.Println("\nphase 1: queue 2 floods, everyone else idle")
	var admitted, dropped int
	for i := 0; i < 60; i++ {
		res := st.Process(2, pktSize, lens)
		if res.Verdict == dynaq.Drop {
			dropped++
			continue
		}
		backlog[2] += pktSize
		admitted++
	}
	fmt.Printf("  admitted %d, dropped %d\n", admitted, dropped)
	printState(st)

	// Phase 2: queue 1 wakes up with a modest backlog. Its arrivals
	// reclaim threshold from queue 2's surplus...
	fmt.Println("\nphase 2: queue 1 becomes active")
	for i := 0; i < 10; i++ {
		if res := st.Process(1, pktSize, lens); res.Verdict != dynaq.Drop {
			backlog[1] += pktSize
		}
	}
	printState(st)

	// ...and now that queue 1 is active but unsatisfied (T_1 < S_1),
	// queue 2 can no longer take its buffer: Algorithm 1 line 3 drops.
	fmt.Println("\nphase 3: queue 2 keeps pushing — protection kicks in")
	admitted, dropped = 0, 0
	for i := 0; i < 20; i++ {
		res := st.Process(2, pktSize, lens)
		if res.Verdict == dynaq.Drop {
			dropped++
			continue
		}
		backlog[2] += pktSize
		admitted++
	}
	fmt.Printf("  admitted %d, dropped %d (victims are protected)\n", admitted, dropped)
	printState(st)

	fmt.Printf("\nhardware budget: Algorithm 1 needs %d clock cycles for 8 queues (§IV-A)\n",
		dynaq.CycleCost(8))
}

func printState(st *dynaq.State) {
	for i := 0; i < st.NumQueues(); i++ {
		fmt.Printf("  queue %d: T=%6d  S=%6d  extra=%+6d  satisfied=%v\n",
			i, st.Threshold(i), st.Satisfaction(i), st.Extra(i), st.Satisfied(i))
	}
}
