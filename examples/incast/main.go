// Incast: microburst absorption under different buffer managers, with
// per-packet tracing.
//
// A long-flow hog fills a port's buffer through queue 2. One second in, 24
// small request-response flows (a partition/aggregate "incast") burst into
// queue 1. The example compares how much of the burst each scheme drops —
// best-effort sacrifices it, DynaQ's thresholds shield it, and BarberQ
// (the eviction scheme the paper cites as [12]) pushes the hog's packets
// out to absorb it — and dumps a packet-level trace of the burst window.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"dynaq"
)

const (
	burstFlows = 24
	burstSize  = 6 * dynaq.KB
)

func main() {
	for _, scheme := range []dynaq.Scheme{
		dynaq.SchemeBestEffort, dynaq.SchemeDynaQ, dynaq.SchemeBarberQ,
	} {
		drops, evicted, avgFCT, done := run(scheme)
		fmt.Printf("%-11s burst: %2d/%d done, avg FCT %6.2fms, queue-1 drops %3d, evictions %3d\n",
			scheme, done, burstFlows, avgFCT, drops, evicted)
	}
}

func run(scheme dynaq.Scheme) (drops, evicted int64, avgMs float64, done int) {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewStarNetwork(s, dynaq.StarConfig{
		Hosts:  3,
		Rate:   dynaq.Gbps,
		Delay:  125 * dynaq.Microsecond,
		Buffer: 85 * dynaq.KB,
		Queues: 4,
		Scheme: scheme,
		Sched:  dynaq.DRR,
	})
	if err != nil {
		log.Fatal(err)
	}
	const receiver = 2
	port := net.Port(receiver)

	// Trace only the interesting events at the bottleneck.
	rec, err := dynaq.NewTraceRecorder(64)
	if err != nil {
		log.Fatal(err)
	}
	rec.Only(dynaq.EvDrop, dynaq.EvEvict)
	rec.Attach(port)

	// The hog: 16 long flows into queue 2.
	for i := 0; i < 16; i++ {
		id := dynaq.FlowID(1 + i)
		s.At(dynaq.Time(i)*dynaq.Time(dynaq.Millisecond)/4, func() {
			if _, err := net.Endpoints[0].StartFlow(dynaq.FlowConfig{
				Flow: id, Dst: receiver, Class: 2,
			}); err != nil {
				log.Fatal(err)
			}
		})
	}
	// The incast: burstFlows small flows into queue 1 at t=1s.
	fct := dynaq.NewFCTCollector()
	for i := 0; i < burstFlows; i++ {
		id := dynaq.FlowID(100 + i)
		s.At(dynaq.Time(dynaq.Second).Add(dynaq.Duration(i)*dynaq.Microsecond), func() {
			if _, err := net.Endpoints[1].StartFlow(dynaq.FlowConfig{
				Flow: id, Dst: receiver, Class: 1, Size: burstSize,
				OnComplete: func(d dynaq.Duration) { fct.Add(burstSize, d) },
			}); err != nil {
				log.Fatal(err)
			}
		})
	}
	var dropsBefore int64
	s.At(dynaq.Time(dynaq.Second-dynaq.Picosecond), func() { dropsBefore = port.QueueDrops(1) })
	s.RunUntil(dynaq.Time(3 * dynaq.Second))

	return port.QueueDrops(1) - dropsBefore,
		port.Stats().Evicted,
		float64(fct.Avg(dynaq.AllFlows)) / float64(dynaq.Millisecond),
		fct.Count(dynaq.AllFlows)
}
