// Datacenter: a leaf-spine fabric under realistic request traffic
// (a scaled-down Fig. 13).
//
// A 4-leaf × 4-spine fabric with 16 hosts runs SPQ-over-DRR ports: queue 0
// is the shared high-priority queue fed by each flow's first 100KB (PIAS
// two-level classification), the remaining queues carry the web-search and
// cache workloads. The example prints the flow-completion-time breakdown
// the paper reports, for DynaQ and best-effort buffering.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynaq"
)

const (
	hosts = 16
	load  = 0.6
	flows = 400
)

func main() {
	fmt.Printf("leaf-spine 4x4, 10Gbps, %d flows at %.0f%% load\n\n", flows, load*100)
	for _, scheme := range []dynaq.Scheme{dynaq.SchemeDynaQ, dynaq.SchemeBestEffort} {
		fct := run(scheme)
		fmt.Printf("%-11s avg FCT: overall %7.2fms  small %6.2fms  p99 small %7.2fms  (%d flows)\n",
			scheme,
			ms(fct.Avg(dynaq.AllFlows)), ms(fct.Avg(dynaq.SmallFlows)),
			ms(fct.Percentile(dynaq.SmallFlows, 0.99)), fct.Count(dynaq.AllFlows))
	}
}

func run(scheme dynaq.Scheme) *dynaq.FCTCollector {
	s := dynaq.NewSimulator()
	net, err := dynaq.NewLeafSpineNetwork(s, dynaq.LeafSpineConfig{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		Rate:   10 * dynaq.Gbps,
		Delay:  10 * dynaq.Microsecond,
		Buffer: 192 * dynaq.KB,
		Queues: 4, // 1 SPQ + 3 DRR service queues
		Scheme: scheme,
		Sched:  dynaq.SPQDRR,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two services with different size distributions, striped over the
	// DRR queues; queue 0 is PIAS's shared high-priority queue.
	services := []*dynaq.CDF{dynaq.WebSearch(), dynaq.CacheWorkload()}
	gen, err := dynaq.NewFlowGen(7, dynaq.WebSearch(), 10*dynaq.Gbps*hosts, load)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	fct := dynaq.NewFCTCollector()

	var launch func(at dynaq.Time, remaining int)
	var id dynaq.FlowID
	launch = func(at dynaq.Time, remaining int) {
		if remaining == 0 {
			return
		}
		s.At(at, func() {
			id++
			svc := rng.Intn(len(services))
			size := services[svc].Sample(rng)
			src := rng.Intn(hosts)
			dst := rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
			class := 1 + svc
			if _, err := net.Endpoints[src].StartFlow(dynaq.FlowConfig{
				Flow: id, Dst: dst, Class: class,
				// PIAS: the first 100KB rides the SPQ queue.
				ClassOf: func(seq int64) int {
					if seq < int64(100*dynaq.KB) {
						return 0
					}
					return class
				},
				Size:   size,
				MinRTO: 5 * dynaq.Millisecond,
				OnComplete: func(d dynaq.Duration) {
					fct.Add(size, d)
				},
			}); err != nil {
				log.Fatal(err)
			}
			launch(at.Add(gen.NextInterarrival()), remaining-1)
		})
	}
	launch(dynaq.Time(gen.NextInterarrival()), flows)
	s.RunUntil(dynaq.Time(30 * dynaq.Second))
	return fct
}

func ms(d dynaq.Duration) float64 { return float64(d) / float64(dynaq.Millisecond) }
