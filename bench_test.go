package dynaq

import (
	"os"
	"strconv"
	"testing"

	"dynaq/internal/experiment"
)

// benchOpts runs every figure at quick scale so `go test -bench=.` stays
// laptop-friendly; cmd/experiments regenerates the recorded results at
// standard/full scale. Grid figures (8, 9, 13, ext-closedloop) run their
// cells on GOMAXPROCS workers by default; set DYNAQ_BENCH_PARALLEL=1 for a
// sequential baseline (an env var because `go test` owns the -parallel
// flag). Results are identical either way — only wall-clock changes.
var benchOpts = Options{Scale: ScaleQuick, Seed: 1, Parallel: benchParallel()}

func benchParallel() int {
	if v, err := strconv.Atoi(os.Getenv("DYNAQ_BENCH_PARALLEL")); err == nil && v > 0 {
		return v
	}
	return 0 // 0 = GOMAXPROCS (see experiment.Workers)
}

// BenchmarkAlgorithm1 measures the software cost of one DynaQ decision on
// an 8-queue port (the §IV-A hardware analysis counts 7 clock cycles for
// the same operation).
func BenchmarkAlgorithm1(b *testing.B) {
	st := MustNew(192*KB, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	backlog := make([]ByteSize, 8)
	lens := QueueLenFunc(func(i int) ByteSize { return backlog[i] })
	backlog[0] = st.Threshold(0) // pin queue 0 at its threshold: worst case
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backlog[0] = st.Threshold(0)
		st.Process(0, 1500, lens)
	}
}

// BenchmarkAlgorithm1Pass measures the fast path (arrival under
// threshold): line 1 only.
func BenchmarkAlgorithm1Pass(b *testing.B) {
	st := MustNew(192*KB, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	lens := QueueLenFunc(func(int) ByteSize { return 0 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Process(i%8, 1500, lens)
	}
}

// The per-figure benchmarks below regenerate each evaluation result; the
// custom metrics they report are the figure's headline numbers.

func BenchmarkFig01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Share[1], "q2share")
	}
}

func BenchmarkFig03(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Share1[0], "dynaq-q1share")
	}
}

func BenchmarkFig04(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Traces[0])), "trace-samples")
	}
}

func BenchmarkFig05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.JainPerPhase[0][0], "dynaq-jain")
	}
}

func BenchmarkFig06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WJain[0], "dynaq-wjain")
	}
}

func BenchmarkFig07(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.JainPerPhase[0][0], "mixed-jain")
	}
}

func BenchmarkFig08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cell(experiment.DynaQ, r.Loads()[0])
		b.ReportMetric(float64(c.AvgSmall)/1e9, "dynaq-small-ms")
	}
}

func BenchmarkFig09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cell(experiment.DynaQ, r.Loads()[0])
		b.ReportMetric(float64(c.AvgSmall)/1e9, "dynaq-small-ms")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanJain[0], "dynaq-jain")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanJain[0], "dynaq-jain")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanJain[0], "dynaq-jain")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cell(experiment.DynaQ, r.Loads()[0])
		b.ReportMetric(float64(c.AvgOverall)/1e9, "dynaq-overall-ms")
	}
}

// BenchmarkExtClosedLoop regenerates the closed-loop Fig 8 variant.
func BenchmarkExtClosedLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunExtClosedLoop(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cell(experiment.DynaQ, r.Loads()[0])
		b.ReportMetric(float64(c.AvgSmall)/1e9, "dynaq-small-ms")
	}
}
